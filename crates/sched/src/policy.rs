//! Pluggable tape-selection policies.
//!
//! When a drive goes idle the scheduler builds one [`TapeCandidate`] per
//! tape that has queued jobs and is neither mounted nor already being
//! fetched, then asks the [`SchedPolicy`] which to serve next. The policy
//! sees only the candidate summaries — queue depth, queued bytes, waiting
//! time, and locate/service estimates for the drive under consideration —
//! never the simulator's internals, so policies stay interchangeable.

use tapesim_des::SimTime;
use tapesim_model::{Bytes, TapeId};

/// One tape eligible for service, as presented to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapeCandidate {
    /// The tape holding queued jobs.
    pub tape: TapeId,
    /// Number of jobs that would ride the next mount (capped at the
    /// configured batch size).
    pub queued_jobs: usize,
    /// Total bytes those jobs would stream.
    pub queued_bytes: Bytes,
    /// Arrival time of the longest-waiting queued job.
    pub oldest_arrival: SimTime,
    /// Estimated time to get the tape mounted on the candidate drive
    /// (rewind + exchange + load for that drive's actual state).
    pub est_locate: SimTime,
    /// Estimated transfer time for the queued bytes.
    pub est_service: SimTime,
}

/// A tape-selection policy.
///
/// `choose` returns the index of the candidate to serve next, or `None`
/// to leave the drive idle (no policy shipped here ever declines work).
pub trait SchedPolicy: std::fmt::Debug + Send + Sync {
    /// Short display name ("fcfs", "batch", ...).
    fn name(&self) -> &'static str;

    /// Picks a candidate index from a non-empty slice.
    fn choose(&self, candidates: &[TapeCandidate]) -> Option<usize>;

    /// Whether the scheduler must serve one request at a time on one
    /// drive, exactly like the legacy `sim::queue` loop. The FCFS
    /// regression baseline sets this; concurrent policies do not.
    fn sequential(&self) -> bool {
        false
    }
}

/// Picks the candidate whose longest-waiting job arrived first.
fn choose_oldest(candidates: &[TapeCandidate]) -> Option<usize> {
    let mut best: Option<(SimTime, TapeId, usize)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let key = (c.oldest_arrival, c.tape, i);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, _, i)| i)
}

/// First-come-first-served, one request at a time: the legacy
/// single-request queue as a scheduling policy. Reproduces
/// `sim::queue::run_queued`'s metrics bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn choose(&self, candidates: &[TapeCandidate]) -> Option<usize> {
        choose_oldest(candidates)
    }

    fn sequential(&self) -> bool {
        true
    }
}

/// Coalesces requests per tape and serves the tape whose head-of-queue
/// job has waited longest: one mount amortised over every queued job for
/// that tape.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchByTape;

impl SchedPolicy for BatchByTape {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn choose(&self, candidates: &[TapeCandidate]) -> Option<usize> {
        choose_oldest(candidates)
    }
}

/// Shortest-locate/service-time-first: serves the tape that finishes its
/// batch soonest (mount estimate + transfer estimate), trading fairness
/// for throughput. Ties break on waiting time, then tape id.
#[derive(Debug, Clone, Copy, Default)]
pub struct SltfTape;

impl SchedPolicy for SltfTape {
    fn name(&self) -> &'static str {
        "sltf"
    }

    fn choose(&self, candidates: &[TapeCandidate]) -> Option<usize> {
        let mut best: Option<(SimTime, SimTime, TapeId, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let key = (c.est_locate + c.est_service, c.oldest_arrival, c.tape, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, _, i)| i)
    }
}

/// The built-in policies, for CLI parsing and experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Fcfs`].
    Fcfs,
    /// [`BatchByTape`].
    BatchByTape,
    /// [`SltfTape`].
    SltfTape,
}

impl PolicyKind {
    /// Every built-in policy, in presentation order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Fcfs,
        PolicyKind::BatchByTape,
        PolicyKind::SltfTape,
    ];

    /// Short label ("fcfs" / "batch" / "sltf").
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::BatchByTape => "batch",
            PolicyKind::SltfTape => "sltf",
        }
    }

    /// Parses a label as accepted by the CLI.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "fcfs" => Some(PolicyKind::Fcfs),
            "batch" | "batch-by-tape" => Some(PolicyKind::BatchByTape),
            "sltf" | "sltf-tape" => Some(PolicyKind::SltfTape),
            _ => None,
        }
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn SchedPolicy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs),
            PolicyKind::BatchByTape => Box::new(BatchByTape),
            PolicyKind::SltfTape => Box::new(SltfTape),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::LibraryId;

    fn cand(slot: u16, oldest: f64, locate: f64, service: f64) -> TapeCandidate {
        TapeCandidate {
            tape: TapeId::new(LibraryId(0), slot),
            queued_jobs: 1,
            queued_bytes: Bytes::gb(1),
            oldest_arrival: SimTime::from_secs(oldest),
            est_locate: SimTime::from_secs(locate),
            est_service: SimTime::from_secs(service),
        }
    }

    #[test]
    fn fcfs_and_batch_pick_longest_waiting() {
        let cands = [
            cand(0, 30.0, 1.0, 1.0),
            cand(1, 10.0, 50.0, 50.0),
            cand(2, 20.0, 2.0, 2.0),
        ];
        assert_eq!(Fcfs.choose(&cands), Some(1));
        assert_eq!(BatchByTape.choose(&cands), Some(1));
    }

    #[test]
    fn sltf_picks_cheapest_batch() {
        let cands = [
            cand(0, 5.0, 40.0, 100.0),
            cand(1, 50.0, 10.0, 20.0), // cheapest despite arriving last
            cand(2, 1.0, 60.0, 90.0),
        ];
        assert_eq!(SltfTape.choose(&cands), Some(1));
    }

    #[test]
    fn ties_break_on_tape_id() {
        let cands = [cand(3, 10.0, 5.0, 5.0), cand(1, 10.0, 5.0, 5.0)];
        // Same arrival: the smaller tape id wins regardless of position.
        assert_eq!(BatchByTape.choose(&cands), Some(1));
        assert_eq!(SltfTape.choose(&cands), Some(1));
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(Fcfs.choose(&[]), None);
        assert_eq!(BatchByTape.choose(&[]), None);
        assert_eq!(SltfTape.choose(&[]), None);
    }

    #[test]
    fn only_fcfs_is_sequential() {
        assert!(Fcfs.sequential());
        assert!(!BatchByTape.sequential());
        assert!(!SltfTape.sequential());
    }

    #[test]
    fn kind_round_trips_through_labels() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.build().name(), kind.label());
        }
        assert_eq!(
            PolicyKind::parse("batch-by-tape"),
            Some(PolicyKind::BatchByTape)
        );
        assert_eq!(PolicyKind::parse("sltf-tape"), Some(PolicyKind::SltfTape));
        assert_eq!(PolicyKind::parse("nope"), None);
    }
}
