//! The pre-optimization concurrent engine, frozen as a reference.
//!
//! This module is a verbatim copy of the concurrent gear as it stood
//! before the hot-path overhaul (PR 4): `BTreeMap`/`BTreeSet` engine
//! state, a whole-`MountState` clone per run, per-dispatch allocations,
//! and batch-only trace auditing. It exists for two jobs:
//!
//! * **Same-run perf comparison** — `benches/perf.rs` runs the optimized
//!   engine and this one back to back on the same machine in the same
//!   process and records both into `BENCH_perf.json`, so the claimed
//!   speedup is measured, not remembered.
//! * **Bit-identity regression** — tests assert the optimized engine
//!   reproduces this engine's metrics exactly (same floats, same
//!   counters) on the same inputs; see
//!   `optimized_engine_is_bit_identical_to_baseline` in `engine.rs`.
//!
//! Nothing else should call into here; the optimized [`crate::engine`]
//! is the engine. Do not "fix" or optimize this module — its value is
//! that it does not change.

use crate::engine::{SchedConfig, SchedOutcome};
use crate::metrics::{RequestRecord, SchedMetrics};
use crate::policy::{SchedPolicy, TapeCandidate};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tapesim_des::audit::TraceAuditor;
use tapesim_des::{Resource, Scheduler, SimTime, TraceEvent, Tracer, World};
use tapesim_faults::{FaultClock, FaultPlan};
use tapesim_model::{Bytes, DriveId, ObjectId, SystemConfig, TapeId};
use tapesim_placement::Placement;
use tapesim_sim::catalog::{tape_jobs, TapeJob};
use tapesim_sim::engine::MountState;
use tapesim_sim::seek_order;
use tapesim_sim::{Simulator, SwitchPolicy};
use tapesim_workload::{ArrivalProcess, Workload};

#[derive(Debug)]
struct JobState {
    request: usize,
    work: TapeJob,
    fatal: bool,
    tried: Vec<TapeId>,
}

#[derive(Debug)]
struct ReqState {
    arrival: SimTime,
    outstanding: usize,
    first_start: Option<SimTime>,
    lost: bool,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrive(usize),
    SwitchDone { drive: usize, tape: TapeId },
    JobDone { drive: usize, job: usize },
    BatchDone { drive: usize },
}

struct BaselineSim<'a> {
    cfg: &'a SystemConfig,
    placement: &'a Placement,
    policy: &'a dyn SchedPolicy,
    switch_policy: SwitchPolicy,
    batch_cap: usize,
    arrivals: &'a [(SimTime, usize)],
    requests_catalog: &'a Workload,
    state: MountState,
    busy: Vec<bool>,
    robots: Vec<Resource>,
    jobs: Vec<JobState>,
    requests: Vec<ReqState>,
    pending: BTreeMap<TapeId, VecDeque<usize>>,
    claimed: BTreeSet<TapeId>,
    outstanding_jobs: usize,
    mounts: u64,
    busy_time: SimTime,
    records: Vec<RequestRecord>,
    tracer: Tracer,
    clock: FaultClock<'a>,
    alternates: &'a BTreeMap<ObjectId, Vec<ObjectId>>,
    dead: Vec<bool>,
    switch_m: Vec<usize>,
    retries: u64,
    failovers_n: u64,
    lost_requests: u64,
}

impl BaselineSim<'_> {
    fn drive_id(&self, idx: usize) -> DriveId {
        let d = self.cfg.library.drives as usize;
        DriveId::new(tapesim_model::LibraryId((idx / d) as u16), (idx % d) as u8)
    }

    fn switch_cost(&self, drive: usize) -> (f64, f64) {
        let spec = &self.cfg.library.drive;
        let robot = &self.cfg.library.robot;
        let capacity = self.cfg.library.tape.capacity;
        match self.state.mounted[drive] {
            Some(_) => (
                spec.rewind_time(self.state.head[drive], capacity),
                spec.unload_time + robot.exchange_handling_time() + spec.load_time,
            ),
            None => (0.0, robot.inject_handling_time() + spec.load_time),
        }
    }

    fn effective_cap(&self, drive: usize) -> usize {
        let d = self.cfg.library.drives as usize;
        let lib = drive / d;
        let healthy = (0..d).filter(|&bay| !self.dead[lib * d + bay]).count();
        if healthy + self.switch_m[lib] < d {
            let shrunk = healthy.max(1);
            if self.batch_cap == 0 {
                shrunk
            } else {
                shrunk.min(self.batch_cap)
            }
        } else {
            self.batch_cap
        }
    }

    fn start_batch(&mut self, drive: usize, tape: TapeId, now: SimTime, sched: &mut Scheduler<Ev>) {
        let spec = &self.cfg.library.drive;
        let capacity = self.cfg.library.tape.capacity;
        let fail_at = self.clock.drive_fail_at(drive);
        let cap = self.effective_cap(drive);
        let tape_idx = self.cfg.tape_index(tape);
        let budget = self.clock.max_retries();
        let mut t = now;
        let mut taken = 0usize;
        loop {
            if cap != 0 && taken >= cap {
                break;
            }
            let Some(&job) = self.pending.get(&tape).and_then(VecDeque::front) else {
                break;
            };
            let plan = seek_order::plan(self.state.head[drive], &self.jobs[job].work.extents);
            let mut pos = self.state.head[drive];
            let mut seek_s = 0.0;
            let mut xfer_s = 0.0;
            let mut granted_total = 0u32;
            let mut extent_retry_s = 0.0;
            let mut fatal = false;
            for e in &plan {
                seek_s += spec.position_time(pos, e.offset, capacity);
                xfer_s += spec.transfer_time(e.size);
                pos = e.end();
                let demand = self.clock.spot_demand(tape_idx, e.offset, e.end());
                if demand > 0 {
                    let granted = demand.min(budget - granted_total);
                    granted_total += granted;
                    extent_retry_s += granted as f64
                        * (spec.position_time(e.end(), e.offset, capacity)
                            + spec.transfer_time(e.size));
                    if demand > granted {
                        fatal = true;
                    }
                }
            }
            let penalty_s = if granted_total > 0 || fatal {
                self.clock.backoff_secs(granted_total) + extent_retry_s
            } else {
                0.0
            };
            let finish = t + SimTime::from_secs(seek_s + xfer_s + penalty_s);
            if finish > fail_at {
                break;
            }
            if let Some(queue) = self.pending.get_mut(&tape) {
                queue.pop_front();
            }
            taken += 1;
            self.state.head[drive] = pos;
            self.tracer.emit(
                now,
                TraceEvent::Transfer {
                    drive: self.drive_id(drive).into(),
                    tape: tape.into(),
                    job: job as u32,
                    extents: plan.len() as u32,
                    seek: SimTime::from_secs(seek_s),
                    transfer: SimTime::from_secs(xfer_s),
                    start: t,
                    finish,
                },
            );
            if granted_total > 0 || fatal {
                self.tracer.emit(
                    now,
                    TraceEvent::ReadFaulted {
                        job: job as u32,
                        drive: self.drive_id(drive).into(),
                        retries: granted_total,
                        penalty: SimTime::from_secs(penalty_s),
                        fatal,
                    },
                );
                self.jobs[job].fatal = fatal;
                self.retries += granted_total as u64;
            }
            let req = self.jobs[job].request;
            self.requests[req].first_start.get_or_insert(t);
            sched.schedule_at(finish, Ev::JobDone { drive, job });
            t = finish;
        }
        if self.pending.get(&tape).is_some_and(VecDeque::is_empty) {
            self.pending.remove(&tape);
        }
        if taken == 0 {
            return;
        }
        self.busy[drive] = true;
        self.busy_time += t - now;
        sched.schedule_at(t, Ev::BatchDone { drive });
    }

    fn exchange_start(&self, lib: usize, mut at: SimTime, duration: SimTime) -> SimTime {
        loop {
            let start = self.robots[lib].earliest_start(at);
            let pushed = self.clock.robot_ready(lib, start, duration);
            if pushed == start {
                return at;
            }
            at = pushed;
        }
    }

    fn reap_failures(&mut self, lib: usize, now: SimTime) {
        let d = self.cfg.library.drives as usize;
        for bay in 0..d {
            let idx = lib * d + bay;
            if self.dead[idx] {
                continue;
            }
            let fail_at = self.clock.drive_fail_at(idx);
            if fail_at <= now {
                self.dead[idx] = true;
                self.tracer.emit(
                    now,
                    TraceEvent::DriveFailed {
                        drive: self.drive_id(idx).into(),
                        at: fail_at,
                    },
                );
                if let Some(tape) = self.state.mounted[idx].take() {
                    self.tracer.emit(
                        now,
                        TraceEvent::Unmounted {
                            drive: self.drive_id(idx).into(),
                            tape: tape.into(),
                        },
                    );
                }
            }
        }
    }

    fn begin_switch(
        &mut self,
        drive: usize,
        tape: TapeId,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let (rewind_s, exchange_s) = self.switch_cost(drive);
        let lib = self.drive_id(drive).library.idx();
        if let Some(old) = self.state.mounted[drive].take() {
            self.tracer.emit(
                now,
                TraceEvent::Unmounted {
                    drive: self.drive_id(drive).into(),
                    tape: old.into(),
                },
            );
        }
        self.state.head[drive] = Bytes::ZERO;
        self.busy[drive] = true;

        let rewind_done = now + SimTime::from_secs(rewind_s);
        let exchange = SimTime::from_secs(exchange_s);
        let at = self.exchange_start(lib, rewind_done, exchange);
        let grant = self.robots[lib].acquire(at, exchange);
        self.mounts += 1;
        self.tracer.emit(
            now,
            TraceEvent::ExchangeBegun {
                drive: self.drive_id(drive).into(),
                tape: tape.into(),
                arm: grant.server as u32,
                start: grant.start,
                finish: grant.finish,
            },
        );
        sched.schedule_at(grant.finish, Ev::SwitchDone { drive, tape });
    }

    fn candidates_for(&self, lib: usize, drive: usize) -> Vec<TapeCandidate> {
        let spec = &self.cfg.library.drive;
        let (rewind_s, exchange_s) = self.switch_cost(drive);
        let est_locate = SimTime::from_secs(rewind_s + exchange_s);
        let cap = self.effective_cap(drive);
        let mut out = Vec::new();
        for (&tape, queue) in &self.pending {
            if tape.library.idx() != lib || queue.is_empty() {
                continue;
            }
            if self.claimed.contains(&tape) || self.state.drive_of(tape).is_some() {
                continue;
            }
            let take = if cap == 0 {
                queue.len()
            } else {
                queue.len().min(cap)
            };
            let mut bytes = Bytes::ZERO;
            let mut oldest = SimTime::MAX;
            for &job in queue.iter().take(take) {
                bytes += self.jobs[job].work.bytes();
                oldest = oldest.min(self.requests[self.jobs[job].request].arrival);
            }
            out.push(TapeCandidate {
                tape,
                queued_jobs: take,
                queued_bytes: bytes,
                oldest_arrival: oldest,
                est_locate,
                est_service: SimTime::from_secs(spec.transfer_time(bytes)),
            });
        }
        out
    }

    fn try_dispatch(&mut self, lib: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.reap_failures(lib, now);
        let d = self.cfg.library.drives as usize;
        for bay in 0..d {
            let idx = lib * d + bay;
            if self.busy[idx] || self.dead[idx] {
                continue;
            }
            if let Some(tape) = self.state.mounted[idx] {
                if self.pending.contains_key(&tape) {
                    self.start_batch(idx, tape, now, sched);
                }
            }
        }
        let mut blocked: BTreeSet<usize> = BTreeSet::new();
        loop {
            let mut best: Option<(u8, f64, usize)> = None;
            for bay in 0..d {
                let idx = lib * d + bay;
                if self.busy[idx] || self.dead[idx] || blocked.contains(&idx) {
                    continue;
                }
                let id = self.drive_id(idx);
                if !self.switch_policy.is_switch_drive(id, self.cfg) {
                    continue;
                }
                let (kind, p) = self
                    .switch_policy
                    .victim_key(self.state.mounted[idx], self.placement);
                let key = (kind, p, idx);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((_, _, drive)) = best else {
                return;
            };
            let fail_at = self.clock.drive_fail_at(drive);
            if fail_at < SimTime::MAX {
                let (rewind_s, exchange_s) = self.switch_cost(drive);
                let exchange = SimTime::from_secs(exchange_s);
                let rewind_done = now + SimTime::from_secs(rewind_s);
                let at = self.exchange_start(lib, rewind_done, exchange);
                let start = self.robots[lib].earliest_start(at);
                if start + exchange > fail_at {
                    blocked.insert(drive);
                    continue;
                }
            }
            let cands = self.candidates_for(lib, drive);
            if cands.is_empty() {
                return;
            }
            let Some(pick) = self.policy.choose(&cands) else {
                return;
            };
            let Some(cand) = cands.get(pick) else {
                return;
            };
            let tape = cand.tape;
            self.claimed.insert(tape);
            self.begin_switch(drive, tape, now, sched);
        }
    }

    fn resolve_fatal(&mut self, job: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        let req = self.jobs[job].request;
        let mut tried = self.jobs[job].tried.clone();
        tried.push(self.jobs[job].work.tape);

        let mut alt_objects = Vec::with_capacity(self.jobs[job].work.extents.len());
        let mut resolvable = true;
        for e in &self.jobs[job].work.extents {
            let replica = self.alternates.get(&e.object).and_then(|alts| {
                alts.iter()
                    .copied()
                    .find(|&o| !tried.contains(&self.placement.locate(o).tape))
            });
            match replica {
                Some(o) => alt_objects.push(o),
                None => {
                    resolvable = false;
                    break;
                }
            }
        }

        self.outstanding_jobs -= 1;
        self.requests[req].outstanding -= 1;
        if resolvable {
            let replacement_work = tape_jobs(self.placement, &alt_objects);
            let mut libs = BTreeSet::new();
            let mut first_replacement = None;
            for tj in replacement_work {
                let new_job = self.jobs.len();
                first_replacement.get_or_insert(new_job);
                let tape = tj.tape;
                self.tracer.emit(
                    now,
                    TraceEvent::JobSubmitted {
                        job: new_job as u32,
                        tape: tape.into(),
                    },
                );
                self.jobs.push(JobState {
                    request: req,
                    work: tj,
                    fatal: false,
                    tried: tried.clone(),
                });
                self.pending.entry(tape).or_default().push_back(new_job);
                self.outstanding_jobs += 1;
                self.requests[req].outstanding += 1;
                self.failovers_n += 1;
                libs.insert(tape.library.idx());
            }
            if let Some(replacement) = first_replacement {
                self.tracer.emit(
                    now,
                    TraceEvent::FailedOver {
                        job: job as u32,
                        replacement: replacement as u32,
                    },
                );
            }
            for lib in libs {
                self.try_dispatch(lib, now, sched);
            }
        } else {
            self.tracer
                .emit(now, TraceEvent::JobLost { job: job as u32 });
            self.requests[req].lost = true;
        }
        if self.requests[req].outstanding == 0 {
            if self.requests[req].lost {
                self.lost_requests += 1;
            } else {
                let r = &self.requests[req];
                self.records.push(RequestRecord {
                    request: req,
                    arrival: r.arrival,
                    first_start: r.first_start.unwrap_or(r.arrival),
                    finish: now,
                });
            }
        }
    }
}

impl World for BaselineSim<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrive(i) => {
                let (arrival, ridx) = self.arrivals[i];
                let objects = &self.requests_catalog.requests()[ridx].objects;
                let work = tape_jobs(self.placement, objects);
                if work.is_empty() {
                    self.records.push(RequestRecord {
                        request: i,
                        arrival,
                        first_start: arrival,
                        finish: arrival,
                    });
                    return;
                }
                let req = self.requests.len();
                self.requests.push(ReqState {
                    arrival,
                    outstanding: work.len(),
                    first_start: None,
                    lost: false,
                });
                let mut libs = BTreeSet::new();
                for tj in work {
                    let job = self.jobs.len();
                    let tape = tj.tape;
                    self.tracer.emit(
                        now,
                        TraceEvent::JobSubmitted {
                            job: job as u32,
                            tape: tape.into(),
                        },
                    );
                    self.jobs.push(JobState {
                        request: req,
                        work: tj,
                        fatal: false,
                        tried: Vec::new(),
                    });
                    self.pending.entry(tape).or_default().push_back(job);
                    self.outstanding_jobs += 1;
                    libs.insert(tape.library.idx());
                }
                for lib in libs {
                    self.try_dispatch(lib, now, sched);
                }
            }
            Ev::SwitchDone { drive, tape } => {
                self.state.mounted[drive] = Some(tape);
                self.state.head[drive] = Bytes::ZERO;
                self.claimed.remove(&tape);
                self.tracer.emit(
                    now,
                    TraceEvent::Mounted {
                        drive: self.drive_id(drive).into(),
                        tape: tape.into(),
                    },
                );
                self.busy[drive] = false;
                if !self.dead[drive] && self.clock.drive_fail_at(drive) <= now {
                    let lib = self.drive_id(drive).library.idx();
                    self.try_dispatch(lib, now, sched);
                    return;
                }
                if self.pending.contains_key(&tape) {
                    self.start_batch(drive, tape, now, sched);
                } else {
                    let lib = self.drive_id(drive).library.idx();
                    self.try_dispatch(lib, now, sched);
                }
            }
            Ev::JobDone { drive, job } => {
                if self.jobs[job].fatal {
                    self.resolve_fatal(job, now, sched);
                    return;
                }
                self.tracer.emit(
                    now,
                    TraceEvent::JobCompleted {
                        job: job as u32,
                        drive: self.drive_id(drive).into(),
                    },
                );
                self.outstanding_jobs -= 1;
                let req = self.jobs[job].request;
                self.requests[req].outstanding -= 1;
                if self.requests[req].outstanding == 0 {
                    if self.requests[req].lost {
                        self.lost_requests += 1;
                    } else {
                        let r = &self.requests[req];
                        self.records.push(RequestRecord {
                            request: req,
                            arrival: r.arrival,
                            first_start: r.first_start.unwrap_or(r.arrival),
                            finish: now,
                        });
                    }
                }
            }
            Ev::BatchDone { drive } => {
                self.busy[drive] = false;
                let lib = self.drive_id(drive).library.idx();
                self.try_dispatch(lib, now, sched);
            }
        }
    }
}

/// Runs the frozen pre-optimization concurrent gear. Always the
/// concurrent engine (no sequential FCFS shortcut) and always batch
/// auditing; see the module docs for why this exists.
pub fn run_scheduled_baseline(
    sim: &Simulator,
    workload: &Workload,
    policy: &dyn SchedPolicy,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
) -> SchedOutcome {
    let placement = sim.placement();
    let system = placement.config();
    let n_drives = system.total_drives();
    let n_libs = system.libraries as usize;
    let d = system.library.drives as usize;
    let switch_policy = sim.policy();
    let switch_m: Vec<usize> = (0..n_libs)
        .map(|lib| {
            (0..d)
                .filter(|&bay| {
                    let id = DriveId::new(tapesim_model::LibraryId(lib as u16), bay as u8);
                    switch_policy.is_switch_drive(id, system)
                })
                .count()
        })
        .collect();

    let mut stream = ArrivalProcess::new(cfg.arrivals);
    let sampler = workload.request_sampler();
    let mut pick_rng = ChaCha12Rng::seed_from_u64(cfg.arrivals.seed ^ 0x9A3E);
    let arrivals: Vec<(SimTime, usize)> = (0..cfg.samples)
        .map(|_| {
            let at = SimTime::from_secs(stream.next_arrival());
            (at, sampler.sample(&mut pick_rng))
        })
        .collect();

    let mut world = BaselineSim {
        cfg: system,
        placement,
        policy,
        switch_policy,
        batch_cap: cfg.max_batch,
        arrivals: &arrivals,
        requests_catalog: workload,
        state: sim.state().clone(),
        busy: vec![false; n_drives],
        robots: vec![Resource::new(system.library.robot.arms.max(1) as usize); n_libs],
        jobs: Vec::new(),
        requests: Vec::new(),
        pending: BTreeMap::new(),
        claimed: BTreeSet::new(),
        outstanding_jobs: 0,
        mounts: 0,
        busy_time: SimTime::ZERO,
        records: Vec::new(),
        tracer: if cfg.audit {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        },
        clock: plan.clock(),
        alternates,
        dead: vec![false; n_drives],
        switch_m,
        retries: 0,
        failovers_n: 0,
        lost_requests: 0,
    };

    for drive in 0..n_drives {
        if let Some(tape) = world.state.mounted[drive] {
            world.tracer.emit(
                SimTime::ZERO,
                TraceEvent::AssumeMounted {
                    drive: world.drive_id(drive).into(),
                    tape: tape.into(),
                },
            );
        }
    }
    for lib in 0..n_libs {
        for &(start, finish) in world.clock.jams(lib) {
            world.tracer.emit(
                SimTime::ZERO,
                TraceEvent::RobotJammed {
                    library: lib as u32,
                    start,
                    finish,
                },
            );
        }
    }

    let mut sched: Scheduler<Ev> = Scheduler::new();
    for (i, &(at, _)) in arrivals.iter().enumerate() {
        sched.schedule_at(at, Ev::Arrive(i));
    }
    let end = sched.run(&mut world);

    for drive in 0..n_drives {
        let fail_at = world.clock.drive_fail_at(drive);
        if !world.dead[drive] && fail_at < SimTime::MAX {
            world.dead[drive] = true;
            world.tracer.emit(
                end,
                TraceEvent::DriveFailed {
                    drive: world.drive_id(drive).into(),
                    at: fail_at,
                },
            );
        }
    }
    let stranded: Vec<usize> = world.pending.values().flatten().copied().collect();
    for job in stranded {
        world
            .tracer
            .emit(end, TraceEvent::JobLost { job: job as u32 });
        world.outstanding_jobs -= 1;
        let req = world.jobs[job].request;
        world.requests[req].outstanding -= 1;
        world.requests[req].lost = true;
        if world.requests[req].outstanding == 0 {
            world.lost_requests += 1;
        }
    }
    world.pending.clear();
    assert_eq!(
        world.outstanding_jobs, 0,
        "scheduler drained with unserved jobs — no eligible switch drive \
         exists; check the policy/config (m >= 1 guarantees progress)"
    );
    debug_assert_eq!(
        world.records.len() + world.lost_requests as usize,
        cfg.samples
    );

    let mut metrics = SchedMetrics::new(n_drives as u32);
    for r in &world.records {
        metrics.record(r);
        if world.clock.degraded_at(r.arrival) {
            metrics.record_degraded_sojourn(r);
        }
    }
    metrics.add_mounts(world.mounts);
    metrics.add_busy_time(world.busy_time);
    let first = arrivals.first().map_or(SimTime::ZERO, |&(at, _)| at);
    metrics.set_horizon_time(end.saturating_sub(first));
    metrics.set_events(sched.events_processed());
    metrics.add_retries(world.retries);
    metrics.add_failovers(world.failovers_n);
    metrics.add_lost(world.lost_requests);
    if !plan.is_zero() {
        let span = end.saturating_sub(first);
        let mut healthy = SimTime::ZERO;
        for drive in 0..n_drives {
            let alive_until = world.clock.drive_fail_at(drive).min(end).max(first);
            healthy += alive_until.saturating_sub(first);
        }
        metrics.set_availability(healthy, span);
    }

    let reports = if cfg.audit {
        vec![TraceAuditor::new()
            .with_retry_cap(plan.spec().max_retries)
            .audit(world.tracer.entries())]
    } else {
        Vec::new()
    };
    // The baseline gear exists only for perf comparison; it does not
    // carry the observability tap.
    SchedOutcome {
        metrics,
        reports,
        budget: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_scheduled_faulty, SchedConfig};
    use tapesim_faults::FaultSpec;
    use tapesim_model::specs::paper_table1;
    use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
    use tapesim_workload::{ArrivalSpec, ObjectSizeSpec, RequestSpec, WorkloadSpec};

    fn heavy_setup() -> (Simulator, Workload) {
        let w = WorkloadSpec {
            objects: 4_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
            requests: RequestSpec {
                count: 60,
                min_objects: 30,
                max_objects: 50,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 17,
        }
        .generate();
        let cfg = paper_table1();
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        (Simulator::with_natural_policy(p, 4), w)
    }

    /// The live concurrent engine must reproduce the frozen baseline bit
    /// for bit — every metric, every audit verdict — on both fault-free
    /// and faulty runs. This is the guard that lets the hot path be
    /// rewritten for speed: any behavioural drift, down to a single
    /// float bit, fails here.
    #[test]
    fn optimized_engine_is_bit_identical_to_baseline() {
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        let plans: [(&str, FaultPlan); 2] = {
            let (sim, _) = heavy_setup();
            [
                ("zero", FaultPlan::zero(sim.placement().config())),
                (
                    "moderate",
                    FaultPlan::generate(&FaultSpec::moderate(41), sim.placement().config()),
                ),
            ]
        };
        for kind in crate::policy::PolicyKind::ALL {
            let policy = kind.build();
            for (plan_label, plan) in &plans {
                if policy.sequential() && plan.is_zero() {
                    // Routed to the sequential legacy gear, not the
                    // concurrent engine this baseline freezes; that gear
                    // is pinned by `fcfs_reproduces_legacy_queue_bit_for_bit`.
                    continue;
                }
                let label = format!("{} / {plan_label}", kind.label());
                let cfg = SchedConfig::new(spec, 25).with_audit(true);
                let alternates = BTreeMap::new();
                let (sim, w) = heavy_setup();
                let base =
                    run_scheduled_baseline(&sim, &w, policy.as_ref(), &cfg, plan, &alternates);
                let (mut sim, _) = heavy_setup();
                let live =
                    run_scheduled_faulty(&mut sim, &w, policy.as_ref(), &cfg, plan, &alternates);

                let (b, l) = (&base.metrics, &live.metrics);
                assert_eq!(l.served(), b.served(), "{label} served");
                assert_eq!(l.mounts(), b.mounts(), "{label} mounts");
                assert_eq!(l.events(), b.events(), "{label} events");
                assert_eq!(
                    l.avg_wait().to_bits(),
                    b.avg_wait().to_bits(),
                    "{label} wait"
                );
                assert_eq!(
                    l.avg_service().to_bits(),
                    b.avg_service().to_bits(),
                    "{label} service"
                );
                assert_eq!(
                    l.avg_sojourn().to_bits(),
                    b.avg_sojourn().to_bits(),
                    "{label} sojourn"
                );
                assert_eq!(
                    l.sojourn_percentile(99.0).to_bits(),
                    b.sojourn_percentile(99.0).to_bits(),
                    "{label} p99"
                );
                assert_eq!(
                    l.utilisation().to_bits(),
                    b.utilisation().to_bits(),
                    "{label} util"
                );
                assert_eq!(
                    (l.retries(), l.failovers(), l.lost()),
                    (b.retries(), b.failovers(), b.lost()),
                    "{label} fault counters"
                );
                assert_eq!(
                    l.availability().to_bits(),
                    b.availability().to_bits(),
                    "{label} availability"
                );
                assert_eq!(live.reports, base.reports, "{label} audit reports");
            }
        }
    }
}
