//! # tapesim-sched
//!
//! A concurrent request-scheduling subsystem for the parallel tape
//! storage simulator: the layer between the workload's arrival stream and
//! the drive-level service engine.
//!
//! The source paper assumes restore requests arrive one by one with long
//! gaps between them (§6), so its simulator serves a single request at a
//! time. Under sustained load that assumption collapses: requests queue,
//! and *which* queued request a freed drive serves next — and whether
//! requests for the same tape share one mount — dominates latency. This
//! crate models that regime:
//!
//! * an **admission queue** holding every outstanding restore request,
//!   decomposed into per-tape jobs by the simulator's catalog;
//! * **per-tape batching** — all queued jobs for a tape ride one mount,
//!   ordered within the tape by the `seek_order` planner;
//! * a **pluggable [`SchedPolicy`]** deciding which tape a freed drive
//!   fetches next: [`Fcfs`] (the legacy one-at-a-time loop, kept as a
//!   bit-for-bit regression baseline), [`BatchByTape`] (coalescing,
//!   longest-waiting tape first) and [`SltfTape`]
//!   (shortest-locate/service-time-first);
//! * **per-request metrics with percentiles** ([`SchedMetrics`]) and
//!   optional trace auditing through `tapesim-des`'s [`TraceAuditor`]
//!   extended invariants for batched service;
//! * **degraded-mode operation** ([`run_scheduled_faulty`]) under a
//!   `tapesim-faults` fault plan: drive failures, robot jams and media
//!   bad-spots with retry, replica failover and availability metrics;
//! * **span time accounting** (`SchedConfig::with_obs`): every run can
//!   carry a `tapesim-obs` [`TimeBudget`] splitting the makespan of each
//!   drive and robot arm into exclusive spans, at zero cost when off.
//!
//! [`TraceAuditor`]: tapesim_des::audit::TraceAuditor

pub mod baseline;
pub mod engine;
pub mod metrics;
pub mod parallel;
pub mod policy;

pub use engine::{
    run_scheduled, run_scheduled_faulty, AuditMode, EngineCheckpoint, MergeOps, OpKey, SchedConfig,
    SchedOutcome, ShardEngine, ShardReport,
};
pub use metrics::{RequestRecord, SchedMetrics};
pub use parallel::{run_scheduled_faulty_parallel, run_scheduled_parallel, ParallelConfig};
pub use policy::{BatchByTape, Fcfs, PolicyKind, SchedPolicy, SltfTape, TapeCandidate};
pub use tapesim_obs::TimeBudget;
pub use tapesim_sim::catalog::{tape_jobs, TapeJob};
