//! The concurrent scheduled-service engine.
//!
//! Where the legacy `sim::queue` loop serves one request at a time on a
//! conceptual single server, [`run_scheduled`] runs the *whole* arrival
//! stream as one discrete-event simulation: requests arrive while earlier
//! ones are still streaming, their per-tape jobs join a shared admission
//! queue, and every drive serves from that queue concurrently. Jobs
//! targeting the same tape coalesce into a batch — one mount amortised
//! over every queued job for that tape, ordered within the tape by the
//! same `seek_order` planner the per-request engine uses.
//!
//! Two gears:
//!
//! * **Sequential** (policies with [`SchedPolicy::sequential`] — FCFS):
//!   a faithful re-run of the legacy queue loop, same RNG streams, same
//!   arithmetic, so its metrics reproduce `run_queued` bit for bit. This
//!   is the regression baseline that anchors the new subsystem to the
//!   old one.
//! * **Concurrent** (everything else): the event-driven shared-queue run
//!   described above, on a clone of the simulator's mount state (the
//!   simulator itself is left untouched).
//!
//! Physical modelling (rewind, exchange, robot contention, seek plans)
//! reuses the per-request engine's formulas so both worlds agree on the
//! hardware.
//!
//! # Fault injection
//!
//! [`run_scheduled_faulty`] threads a pre-generated
//! [`tapesim_faults::FaultPlan`] through the concurrent gear. All fault
//! handling is *guarded*: under a zero plan every fault query returns its
//! identity value and the run is bit-identical to [`run_scheduled`]
//! (pinned by regression test). Degraded-mode behaviour:
//!
//! * **Drive failures** are noticed lazily at dispatch time (no far-future
//!   DES events that would distort the horizon): batches are truncated so
//!   no window outlives the drive, exchanges are only begun if they finish
//!   before the failure, and a dead drive's mounted tape is recovered via
//!   the robot and remounted on a surviving drive by normal dispatch.
//! * **Robot jams** push exchange windows past the repair interval.
//! * **Media bad-spots** charge retries (capped exponential backoff plus
//!   reposition-and-reread per retry) against a per-job budget; a job
//!   whose demand exceeds the budget is *fatal* and is failed over to a
//!   replica copy (when the placement has one on an untried tape) or
//!   counted as a terminal loss — never a panic.
//! * **Batch shrinking**: when a library drops below `d − m` healthy
//!   drives, its batches are capped at the healthy-drive count.
//! * Jobs stranded when no feasible drive remains are swept into counted
//!   losses after the event queue drains.

use crate::metrics::{RequestRecord, SchedMetrics};
use crate::policy::{SchedPolicy, TapeCandidate};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use tapesim_des::audit::{AuditReport, AuditStream, TraceAuditor};
use tapesim_des::trace::TraceEntry;
use tapesim_des::{Resource, Scheduler, SimTime, TraceEvent, Tracer, World};
use tapesim_faults::{FaultClock, FaultPlan};
use tapesim_model::tape::Extent;
use tapesim_model::{Bytes, DriveId, ObjectId, SystemConfig, TapeId};
use tapesim_obs::{TimeAccountant, TimeBudget, Topology};
use tapesim_placement::Placement;
use tapesim_sim::catalog::{tape_jobs, TapeJob};
use tapesim_sim::seek_order;
use tapesim_sim::{SeekPolicy, Simulator, SwitchPolicy};
use tapesim_workload::{ArrivalProcess, ArrivalSpec, RequestStream, Workload};

/// How the engine feeds the trace auditor when auditing is on.
///
/// Both modes produce identical [`AuditReport`]s — proven by the
/// equivalence proptests in `tapesim_des::audit` — so the choice is
/// purely about memory: streaming never materialises the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// Feed each event to an [`AuditStream`] as it is emitted; the full
    /// trace is never buffered. The default.
    #[default]
    Streaming,
    /// Buffer the whole trace in a [`Tracer`] and audit it at the end of
    /// the run. Useful when the trace itself is wanted afterwards.
    Batch,
}

/// Configuration of one scheduled run.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// The Poisson arrival stream.
    pub arrivals: ArrivalSpec,
    /// Number of requests to serve.
    pub samples: usize,
    /// Largest number of jobs one mount may serve (0 = unlimited).
    pub max_batch: usize,
    /// Whether to record and audit the event trace.
    pub audit: bool,
    /// Whether audits consume events online or from a buffered trace.
    pub audit_mode: AuditMode,
    /// Whether to run the span accountant and attach a
    /// [`TimeBudget`] to the outcome. Off by default; when off the
    /// only cost is one `None` check per emitted trace event.
    pub obs: bool,
    /// The in-tape service-order planner. Per-tape-local (mount and
    /// batch decisions are untouched), so parallel partition eligibility
    /// is unchanged. [`SeekPolicy::Greedy`] — the default — is
    /// bit-identical to runs recorded before seek policies existed.
    pub seek: SeekPolicy,
}

impl SchedConfig {
    /// A run of `samples` requests with unlimited batches and no audit.
    pub fn new(arrivals: ArrivalSpec, samples: usize) -> SchedConfig {
        SchedConfig {
            arrivals,
            samples,
            max_batch: 0,
            audit: false,
            audit_mode: AuditMode::default(),
            obs: false,
            seek: SeekPolicy::Greedy,
        }
    }

    /// Caps batch size (0 = unlimited).
    pub fn with_max_batch(mut self, max_batch: usize) -> SchedConfig {
        self.max_batch = max_batch;
        self
    }

    /// Enables trace recording and auditing.
    pub fn with_audit(mut self, audit: bool) -> SchedConfig {
        self.audit = audit;
        self
    }

    /// Selects how audits consume the event stream (default: streaming).
    pub fn with_audit_mode(mut self, mode: AuditMode) -> SchedConfig {
        self.audit_mode = mode;
        self
    }

    /// Enables span time accounting (a [`TimeBudget`] on the outcome).
    pub fn with_obs(mut self, obs: bool) -> SchedConfig {
        self.obs = obs;
        self
    }

    /// Selects the in-tape service-order planner (default:
    /// [`SeekPolicy::Greedy`]).
    pub fn with_seek(mut self, seek: SeekPolicy) -> SchedConfig {
        self.seek = seek;
        self
    }
}

/// The span accountant's view of the simulated hardware.
fn topology_of(system: &SystemConfig) -> Topology {
    Topology {
        libraries: system.libraries as u32,
        drives_per_library: system.library.drives as u32,
        arms_per_library: system.library.robot.arms.max(1) as u32,
        tapes_per_library: system.library.tapes as u32,
        load_secs: system.library.drive.load_time,
        unload_secs: system.library.drive.unload_time,
    }
}

/// Where the engine's trace events go: nowhere, into a buffered
/// [`Tracer`] for one batch audit at the end, or straight into an online
/// [`AuditStream`].
#[derive(Debug)]
enum AuditSink {
    Off,
    Batch(Tracer),
    Stream(Box<AuditStream>),
}

impl AuditSink {
    fn new(cfg: &SchedConfig, auditor: &TraceAuditor) -> AuditSink {
        if !cfg.audit {
            AuditSink::Off
        } else {
            match cfg.audit_mode {
                AuditMode::Batch => AuditSink::Batch(Tracer::enabled()),
                AuditMode::Streaming => AuditSink::Stream(Box::new(auditor.stream())),
            }
        }
    }

    #[inline]
    fn emit(&mut self, time: SimTime, event: TraceEvent) {
        match self {
            AuditSink::Off => {}
            AuditSink::Batch(tracer) => tracer.emit(time, event),
            AuditSink::Stream(stream) => stream.push(&TraceEntry { time, event }),
        }
    }

    /// Produces the run's audit reports (empty when auditing is off).
    fn finish(self, auditor: &TraceAuditor) -> Vec<AuditReport> {
        match self {
            AuditSink::Off => Vec::new(),
            AuditSink::Batch(tracer) => vec![auditor.audit(tracer.entries())],
            AuditSink::Stream(stream) => vec![stream.finish()],
        }
    }
}

/// The engine's single trace-event tap: every emitted event goes to the
/// optional span accountant and then to the audit sink. Both consumers
/// are streaming; neither buffers the trace. With both off, the cost per
/// event is one `None` check and one `Off` match.
#[derive(Debug)]
struct Tap {
    sink: AuditSink,
    spans: Option<Box<TimeAccountant>>,
}

impl Tap {
    fn new(cfg: &SchedConfig, auditor: &TraceAuditor, system: &SystemConfig) -> Tap {
        Tap {
            sink: AuditSink::new(cfg, auditor),
            spans: cfg
                .obs
                .then(|| Box::new(TimeAccountant::new(topology_of(system)))),
        }
    }

    #[inline]
    fn emit(&mut self, time: SimTime, event: TraceEvent) {
        if let Some(acc) = self.spans.as_deref_mut() {
            acc.observe(time, &event);
        }
        self.sink.emit(time, event);
    }

    /// Closes both consumers: audit reports from the sink, the time
    /// budget (booked against makespan `end`) from the accountant.
    fn finish(
        self,
        auditor: &TraceAuditor,
        end: SimTime,
    ) -> (Vec<AuditReport>, Option<TimeBudget>) {
        let budget = self.spans.map(|acc| acc.finish(end));
        (self.sink.finish(auditor), budget)
    }
}

/// Result of one scheduled run.
#[derive(Debug, Clone, Default)]
pub struct SchedOutcome {
    /// Per-request metrics with percentiles.
    pub metrics: SchedMetrics,
    /// Audit reports (one per request in the sequential gear, one for the
    /// whole run in the concurrent gear; empty when auditing is off).
    pub reports: Vec<AuditReport>,
    /// Per-resource time budget (present iff [`SchedConfig::obs`] was
    /// set): the makespan of every drive and robot arm split into
    /// exclusive span categories, plus job-phase totals.
    pub budget: Option<TimeBudget>,
}

impl SchedOutcome {
    /// Whether every recorded trace passed the auditor.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(AuditReport::is_clean)
    }
}

/// Runs `cfg.samples` popularity-drawn requests through the scheduler
/// under `policy`.
///
/// The request-pick RNG (`seed ^ 0x9A3E`) and arrival stream match the
/// legacy `sim::queue::run_queued` exactly, so every policy sees the same
/// demand. Sequential policies mutate `sim`'s mount state like the legacy
/// loop; concurrent policies run on a clone and leave `sim` untouched.
pub fn run_scheduled(
    sim: &mut Simulator,
    workload: &Workload,
    policy: &dyn SchedPolicy,
    cfg: &SchedConfig,
) -> SchedOutcome {
    crate::parallel::run_scheduled_parallel(
        sim,
        workload,
        policy,
        cfg,
        &crate::parallel::ParallelConfig::from_env(),
    )
}

/// [`run_scheduled`] with fault injection: drives fail per `plan`, robot
/// jams delay exchanges, and media bad-spots burn retries. `alternates`
/// maps each object to its replica copies (from
/// `tapesim_workload::ReplicaMap::alternates`); jobs whose retries are
/// exhausted fail over to an untried replica tape or become counted
/// losses.
///
/// With a zero plan the metrics are bit-identical to [`run_scheduled`].
/// Sequential policies route by what the plan injects: a **media-only**
/// plan (bad-spots, no drive failures, no jams) re-runs the legacy
/// single-server fault loop and reproduces `sim::queue::run_queued_faulty`
/// bit for bit (pinned by the differential tests); any plan with drive
/// failures or jams routes through the concurrent event gear — the
/// single-server loop has no drive identities for those faults to act
/// on. FCFS order is preserved there by `Fcfs::choose` (oldest arrival
/// first).
pub fn run_scheduled_faulty(
    sim: &mut Simulator,
    workload: &Workload,
    policy: &dyn SchedPolicy,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
) -> SchedOutcome {
    crate::parallel::run_scheduled_faulty_parallel(
        sim,
        workload,
        policy,
        cfg,
        plan,
        alternates,
        &crate::parallel::ParallelConfig::from_env(),
    )
}

/// The legacy single-server FCFS loop, re-expressed. Arithmetic, RNG
/// draws and accumulator push order are copied verbatim from
/// `sim::queue::run_queued` — the bit-for-bit regression baseline.
pub(crate) fn run_sequential(
    sim: &mut Simulator,
    workload: &Workload,
    cfg: &SchedConfig,
) -> SchedOutcome {
    sim.set_seek(cfg.seek);
    let mut stream = ArrivalProcess::new(cfg.arrivals);
    let sampler = workload.request_sampler();
    let mut pick_rng = ChaCha12Rng::seed_from_u64(cfg.arrivals.seed ^ 0x9A3E);

    let mut metrics = SchedMetrics::new(1);
    let mut reports = Vec::new();
    let mut acct = new_sequential_accountant(sim, cfg);
    let mut server_free = 0.0;
    let mut first_arrival = None;
    let mut events = 0u64;
    for _ in 0..cfg.samples {
        let clock = stream.next_arrival();
        first_arrival.get_or_insert(clock);
        let idx = sampler.sample(&mut pick_rng);
        let request = &workload.requests()[idx];

        let start = clock.max(server_free);
        let r = if cfg.audit || acct.is_some() {
            let (r, tracer) = sim.serve_traced(&request.objects);
            if cfg.audit {
                reports.push(match cfg.audit_mode {
                    AuditMode::Batch => TraceAuditor::new().audit(tracer.entries()),
                    AuditMode::Streaming => {
                        let mut stream = TraceAuditor::new().stream();
                        stream.push_all(tracer.entries());
                        stream.finish()
                    }
                });
            }
            observe_request_trace(&mut acct, start, &tracer);
            r
        } else {
            sim.serve(&request.objects)
        };
        server_free = start + r.response;

        metrics.record_seconds(start - clock, r.response, server_free - clock);
        metrics.add_mounts(r.n_switches as u64);
        metrics.add_busy(r.response);
        events += r.n_events;
    }
    metrics.set_horizon(server_free - first_arrival.unwrap_or(0.0));
    metrics.set_events(events);
    let budget = acct.map(|acc| acc.finish(SimTime::from_secs(server_free)));
    SchedOutcome {
        metrics,
        reports,
        budget,
    }
}

/// The span accountant for a sequential-gear run, when `cfg.obs` asks
/// for one.
fn new_sequential_accountant(sim: &Simulator, cfg: &SchedConfig) -> Option<Box<TimeAccountant>> {
    cfg.obs
        .then(|| Box::new(TimeAccountant::new(topology_of(sim.placement().config()))))
}

/// Stitches one per-request trace (whose local clock restarts at zero)
/// onto the run axis at `start` and feeds it to the accountant.
/// Sequential services never overlap, so the shifted windows stay
/// exclusive per resource.
fn observe_request_trace(acct: &mut Option<Box<TimeAccountant>>, start: f64, tracer: &Tracer) {
    if let Some(acc) = acct.as_deref_mut() {
        let offset = SimTime::from_secs(start);
        for entry in tracer.entries() {
            acc.observe_shifted(offset, entry.time, &entry.event);
        }
    }
}

/// The legacy single-server loop under **media-only** faults: arithmetic,
/// RNG draws, accumulator push order and fault bookkeeping are copied
/// verbatim from `sim::queue::run_queued_faulty`, so the metric bits and
/// the lost/retries/failovers counters agree exactly (pinned by the
/// differential tests). Lost requests are skipped, never served.
///
/// Media-retry penalties are response-time surcharges with no trace
/// events behind them in this gear, so in an observed run they surface
/// as server idle time, not `Transfer` — documented in DESIGN §12.
pub(crate) fn run_sequential_faulty(
    sim: &mut Simulator,
    workload: &Workload,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
) -> SchedOutcome {
    sim.set_seek(cfg.seek);
    let clock = plan.clock();
    let mut stream = ArrivalProcess::new(cfg.arrivals);
    let sampler = workload.request_sampler();
    let mut pick_rng = ChaCha12Rng::seed_from_u64(cfg.arrivals.seed ^ 0x9A3E);

    let mut metrics = SchedMetrics::new(1);
    let mut reports = Vec::new();
    let mut acct = new_sequential_accountant(sim, cfg);
    let mut retries = 0u64;
    let mut failovers = 0u64;
    let mut lost_requests = 0u64;
    let mut server_free = 0.0;
    let mut first_arrival = None;
    let mut events = 0u64;
    for _ in 0..cfg.samples {
        let clock_t = stream.next_arrival();
        first_arrival.get_or_insert(clock_t);
        let idx = sampler.sample(&mut pick_rng);
        let request = &workload.requests()[idx];

        let placement = sim.placement();
        let syscfg = placement.config();
        let spec = &syscfg.library.drive;
        let capacity = syscfg.library.tape.capacity;
        let budget = clock.max_retries();

        let jobs = tape_jobs(placement, &request.objects);
        let mut final_objects = Vec::with_capacity(request.objects.len());
        let mut penalty_s = 0.0;
        let mut lost = false;
        for job in &jobs {
            let tape_idx = syscfg.tape_index(job.tape);
            let mut granted_total = 0u32;
            let mut extent_retry_s = 0.0;
            let mut fatal = false;
            for e in &job.extents {
                let demand = clock.spot_demand(tape_idx, e.offset, e.end());
                if demand > 0 {
                    let granted = demand.min(budget - granted_total);
                    granted_total += granted;
                    extent_retry_s += granted as f64
                        * (spec.position_time(e.end(), e.offset, capacity)
                            + spec.transfer_time(e.size));
                    if demand > granted {
                        fatal = true;
                    }
                }
            }
            if granted_total > 0 || fatal {
                penalty_s += clock.backoff_secs(granted_total) + extent_retry_s;
                retries += granted_total as u64;
            }
            if !fatal {
                final_objects.extend(job.extents.iter().map(|e| e.object));
                continue;
            }
            // Retries exhausted: redirect every extent to a replica on a
            // different tape, or lose the whole request.
            let mut replicas = Vec::with_capacity(job.extents.len());
            let resolvable = job.extents.iter().all(|e| {
                alternates
                    .get(&e.object)
                    .and_then(|alts| {
                        alts.iter()
                            .copied()
                            .find(|&o| placement.locate(o).tape != job.tape)
                    })
                    .map(|o| replicas.push(o))
                    .is_some()
            });
            if resolvable {
                failovers += 1;
                final_objects.extend(replicas);
            } else {
                lost = true;
                break;
            }
        }
        if lost {
            lost_requests += 1;
            continue;
        }

        let start = clock_t.max(server_free);
        let r = if cfg.audit || acct.is_some() {
            let (r, tracer) = sim.serve_traced(&final_objects);
            if cfg.audit {
                reports.push(match cfg.audit_mode {
                    AuditMode::Batch => TraceAuditor::new().audit(tracer.entries()),
                    AuditMode::Streaming => {
                        let mut stream = TraceAuditor::new().stream();
                        stream.push_all(tracer.entries());
                        stream.finish()
                    }
                });
            }
            observe_request_trace(&mut acct, start, &tracer);
            r
        } else {
            sim.serve(&final_objects)
        };
        let response = r.response + penalty_s;
        server_free = start + response;

        metrics.record_seconds(start - clock_t, response, server_free - clock_t);
        metrics.add_mounts(r.n_switches as u64);
        metrics.add_busy(response);
        events += r.n_events;
    }
    metrics.set_horizon(server_free - first_arrival.unwrap_or(0.0));
    metrics.set_events(events);
    metrics.add_retries(retries);
    metrics.add_failovers(failovers);
    metrics.add_lost(lost_requests);
    let budget = acct.map(|acc| acc.finish(SimTime::from_secs(server_free)));
    SchedOutcome {
        metrics,
        reports,
        budget,
    }
}

/// One job in the shared admission queue.
#[derive(Debug)]
struct JobState<'a> {
    /// Index of the arrival (request instance) this job belongs to.
    request: usize,
    /// The tape job: target tape plus extents in ascending offset order.
    /// Arrival jobs borrow the per-request catalog built once per run;
    /// only failover replacements (rare) own freshly grouped work.
    work: Cow<'a, TapeJob>,
    /// The job's read exhausted its retry budget; on completion it must
    /// fail over or be declared lost instead of counting as served.
    fatal: bool,
    /// Tapes already attempted for this data (failover lineage) — a
    /// replica is only eligible if its tape is not in here.
    tried: Vec<TapeId>,
}

/// One outstanding request instance.
#[derive(Debug)]
struct ReqState {
    /// Submission index of the arrival this request answers (the `i` of
    /// [`Ev::Arrive`]); carried into its [`RequestRecord`] so external
    /// collectors can join completions back to submissions.
    index: usize,
    arrival: SimTime,
    /// Jobs not yet completed.
    outstanding: usize,
    /// When its first byte started streaming.
    first_start: Option<SimTime>,
    /// Merge key of the planning event that set `first_start`: the event
    /// instant, its priority class and the library it planned in. The
    /// parallel merge uses it to decide which partition's `first_start`
    /// the monolithic engine would have kept (see `crate::parallel`).
    first_plan: Option<OpKey>,
    /// At least one of its jobs was terminally lost.
    lost: bool,
}

/// Where in the monolithic event order an order-sensitive operation
/// (busy-time delta, first-plan) happened: the event's timestamp, its
/// priority class ([`ARRIVAL_PRIORITY`] for arrivals, 0 otherwise) and
/// the library whose dispatch performed it. Within one `(time, class)`
/// tie the monolithic engine visits libraries in ascending order, so
/// comparing keys lexicographically reproduces its operation order
/// across per-library partitions (the lockstep argument, DESIGN §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OpKey {
    /// Timestamp of the event performing the operation.
    pub at: SimTime,
    /// Priority class of that event (arrivals fire before same-time
    /// service events).
    pub class: i8,
    /// Library whose dispatch performed the operation.
    pub lib: u16,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The `i`-th precomputed arrival enters the admission queue.
    Arrive(usize),
    /// A tape exchange completed; the drive now holds `tape`.
    SwitchDone { drive: usize, tape: TapeId },
    /// One job of a batch finished streaming.
    JobDone { drive: usize, job: usize },
    /// A drive finished its whole batch and is idle again.
    BatchDone { drive: usize },
}

struct SchedSim<'a> {
    cfg: &'a SystemConfig,
    placement: &'a Placement,
    policy: &'a dyn SchedPolicy,
    switch_policy: SwitchPolicy,
    batch_cap: usize,
    /// The in-tape service-order planner (from [`SchedConfig::seek`]).
    seek: SeekPolicy,
    /// Arrival times and workload-request indices in submission order.
    /// Owned so the incremental [`ShardEngine`] can append while the
    /// event loop runs; the batch gear fills it up front.
    arrivals: Vec<(SimTime, usize)>,
    /// Per-request tape jobs, grouped once per run and indexed by
    /// workload-request rank. Arrivals resample the same few requests, so
    /// borrowing from here replaces a `tape_jobs` regrouping (hash set,
    /// tree map, sorts, fresh vectors) on every arrival.
    job_catalog: &'a [Vec<TapeJob>],
    /// Dense snapshot of the simulator's mount state — the only two
    /// fields dispatch reads or advances. Copied once per run (two small
    /// per-drive vectors); the simulator itself is never cloned or
    /// mutated by the concurrent gear.
    mounted: Vec<Option<TapeId>>,
    /// Per-drive head position, advanced as batches stream.
    head: Vec<Bytes>,
    /// Reverse mount index by [`SystemConfig::tape_index`]: which drive
    /// currently holds each tape. Mirrors `mounted` exactly; replaces
    /// the per-candidate linear `drive_of` scan.
    holder: Vec<Option<u32>>,
    busy: Vec<bool>,
    robots: Vec<Resource>,
    jobs: Vec<JobState<'a>>,
    requests: Vec<ReqState>,
    /// Shared admission queue: per-tape FIFO of job indices, dense by
    /// [`SystemConfig::tape_index`]. An empty deque means "no queue" —
    /// and because `tape_index` is library-major ascending, walking a
    /// library's slot range in index order visits tapes in exactly the
    /// `TapeId` order the old `BTreeMap` iteration produced.
    pending: Vec<VecDeque<usize>>,
    /// Tapes currently being fetched by an exchange, dense by tape index.
    claimed: Vec<bool>,
    outstanding_jobs: usize,
    mounts: u64,
    busy_time: SimTime,
    records: Vec<RequestRecord>,
    /// Audit/observability tap: every emitted event passes the optional
    /// span accountant, then the audit sink.
    audit: Tap,
    /// Fault-plan view; identity answers under a zero plan.
    clock: FaultClock<'a>,
    /// Replica fallbacks per object (empty when replication is off).
    alternates: &'a BTreeMap<ObjectId, Vec<ObjectId>>,
    /// Drives whose permanent failure has been noticed.
    dead: Vec<bool>,
    /// Switch-drive count per library (the `m` of the d−m batch rule).
    switch_m: Vec<usize>,
    retries: u64,
    failovers_n: u64,
    lost_requests: u64,
    /// Submission indices of terminally lost requests, in loss order —
    /// the complement of `records` (together they partition the accepted
    /// submissions), so collectors can account for every request.
    lost_log: Vec<usize>,
    /// Per-drive victim-scan scratch for [`Self::try_dispatch`] (drives
    /// whose exchange cannot finish before their failure instant).
    /// Member so the allocation is reused across dispatches.
    blocked: Vec<bool>,
    /// Per-library scratch marking libraries touched by an arrival or a
    /// failover, drained in ascending order (the old `BTreeSet` order).
    libs_hit: Vec<bool>,
    /// Candidate-list scratch for [`Self::try_dispatch`], reused across
    /// dispatches instead of allocating per victim scan.
    cands: Vec<TapeCandidate>,
    /// Seek-plan scratch for [`Self::start_batch`]: one buffer reused for
    /// every job's service order instead of the ~10 vectors per job the
    /// allocating [`seek_order::plan`] costs.
    plan_scratch: Vec<Extent>,
    /// Priority class of the event currently being handled (the
    /// [`ARRIVAL_PRIORITY`] of arrivals, 0 otherwise) — the class half of
    /// the [`OpKey`]s stamped on order-sensitive operations.
    event_class: i8,
    /// Order-sensitive busy-time deltas, keyed for the parallel merge.
    /// `None` outside partitioned runs, so the single-engine paths pay
    /// nothing.
    busy_log: Option<Vec<(OpKey, SimTime)>>,
}

impl SchedSim<'_> {
    /// The merge key of an order-sensitive operation performed at `now`
    /// by `drive`'s library, under the event class currently in flight.
    fn op_key(&self, now: SimTime, drive: usize) -> OpKey {
        OpKey {
            at: now,
            class: self.event_class,
            lib: (drive / self.cfg.library.drives as usize) as u16,
        }
    }

    fn drive_id(&self, idx: usize) -> DriveId {
        let d = self.cfg.library.drives as usize;
        DriveId::new(tapesim_model::LibraryId((idx / d) as u16), (idx % d) as u8)
    }

    /// Rewind + exchange seconds to bring a new tape onto `drive`, given
    /// its current occupancy (the per-request engine's switch timeline).
    fn switch_cost(&self, drive: usize) -> (f64, f64) {
        let spec = &self.cfg.library.drive;
        let robot = &self.cfg.library.robot;
        let capacity = self.cfg.library.tape.capacity;
        match self.mounted[drive] {
            Some(_) => (
                spec.rewind_time(self.head[drive], capacity),
                spec.unload_time + robot.exchange_handling_time() + spec.load_time,
            ),
            None => (0.0, robot.inject_handling_time() + spec.load_time),
        }
    }

    /// The batch cap for `drive`, shrunk when its library is degraded:
    /// once fewer than `d − m` drives survive, batches are capped at the
    /// healthy-drive count so no single mount monopolises what is left.
    fn effective_cap(&self, drive: usize) -> usize {
        let d = self.cfg.library.drives as usize;
        let lib = drive / d;
        let healthy = (0..d).filter(|&bay| !self.dead[lib * d + bay]).count();
        if healthy + self.switch_m[lib] < d {
            let shrunk = healthy.max(1);
            if self.batch_cap == 0 {
                shrunk
            } else {
                shrunk.min(self.batch_cap)
            }
        } else {
            self.batch_cap
        }
    }

    /// Streams up to [`Self::effective_cap`] queued jobs of `tape` back to
    /// back on `drive` (already holding the tape), scheduling per-job
    /// completions and the batch end. Media bad-spots under the read
    /// extents burn retries — backoff plus one reposition-and-reread per
    /// retry — against the per-job budget; exhausting it marks the job
    /// fatal. The batch is truncated so no window outlives the drive's
    /// failure instant; truncated jobs stay pending.
    fn start_batch(&mut self, drive: usize, tape: TapeId, now: SimTime, sched: &mut Scheduler<Ev>) {
        let spec = &self.cfg.library.drive;
        let capacity = self.cfg.library.tape.capacity;
        let fail_at = self.clock.drive_fail_at(drive);
        let cap = self.effective_cap(drive);
        let tape_idx = self.cfg.tape_index(tape);
        let budget = self.clock.max_retries();
        let mut t = now;
        let mut taken = 0usize;
        loop {
            if cap != 0 && taken >= cap {
                break;
            }
            let Some(&job) = self.pending[tape_idx].front() else {
                break;
            };
            // Reuses the member scratch: under the default greedy policy
            // `plan_with` yields the exact order `seek_order::plan`
            // would, without its per-job vectors.
            let mut plan = std::mem::take(&mut self.plan_scratch);
            seek_order::plan_with(
                self.seek,
                self.head[drive],
                &self.jobs[job].work.extents,
                &mut plan,
            );
            let mut pos = self.head[drive];
            let mut seek_s = 0.0;
            let mut xfer_s = 0.0;
            let mut granted_total = 0u32;
            let mut extent_retry_s = 0.0;
            let mut fatal = false;
            for e in &plan {
                seek_s += spec.position_time(pos, e.offset, capacity);
                xfer_s += spec.transfer_time(e.size);
                pos = e.end();
                let demand = self.clock.spot_demand(tape_idx, e.offset, e.end());
                if demand > 0 {
                    let granted = demand.min(budget - granted_total);
                    granted_total += granted;
                    extent_retry_s += granted as f64
                        * (spec.position_time(e.end(), e.offset, capacity)
                            + spec.transfer_time(e.size));
                    if demand > granted {
                        fatal = true;
                    }
                }
            }
            let plan_len = plan.len();
            plan.clear();
            self.plan_scratch = plan;
            let penalty_s = if granted_total > 0 || fatal {
                self.clock.backoff_secs(granted_total) + extent_retry_s
            } else {
                0.0
            };
            // `x + 0.0` preserves the bits of `x`, so the zero-fault
            // window is identical to the fault-free formula.
            let finish = t + SimTime::from_secs(seek_s + xfer_s + penalty_s);
            if finish > fail_at {
                // The drive dies mid-window: leave this job (and the rest
                // of the queue) pending for a surviving drive.
                break;
            }
            self.pending[tape_idx].pop_front();
            taken += 1;
            self.head[drive] = pos;
            // All of the batch's windows are emitted at `now` (when the
            // batch was planned) so entry timestamps stay monotone; the
            // start/finish fields carry the actual windows.
            self.audit.emit(
                now,
                TraceEvent::Transfer {
                    drive: self.drive_id(drive).into(),
                    tape: tape.into(),
                    job: job as u32,
                    extents: plan_len as u32,
                    seek: SimTime::from_secs(seek_s),
                    transfer: SimTime::from_secs(xfer_s),
                    start: t,
                    finish,
                },
            );
            if granted_total > 0 || fatal {
                self.audit.emit(
                    now,
                    TraceEvent::ReadFaulted {
                        job: job as u32,
                        drive: self.drive_id(drive).into(),
                        retries: granted_total,
                        penalty: SimTime::from_secs(penalty_s),
                        fatal,
                    },
                );
                self.jobs[job].fatal = fatal;
                self.retries += granted_total as u64;
            }
            let req = self.jobs[job].request;
            if self.requests[req].first_start.is_none() {
                self.requests[req].first_plan = Some(self.op_key(now, drive));
            }
            self.requests[req].first_start.get_or_insert(t);
            sched.schedule_at(finish, Ev::JobDone { drive, job });
            t = finish;
        }
        if taken == 0 {
            return;
        }
        self.busy[drive] = true;
        self.busy_time += t - now;
        let key = self.op_key(now, drive);
        if let Some(log) = self.busy_log.as_mut() {
            log.push((key, t - now));
        }
        // Scheduled after the last JobDone at the same instant, so
        // completions are recorded before the drive re-dispatches.
        sched.schedule_at(t, Ev::BatchDone { drive });
    }

    /// The earliest request time `>= at` at which an exchange of
    /// `duration` neither starts inside nor overlaps a jam window of
    /// `lib`'s robot, accounting for arm availability. Identity when the
    /// plan has no jams.
    fn exchange_start(&self, lib: usize, mut at: SimTime, duration: SimTime) -> SimTime {
        loop {
            let start = self.robots[lib].earliest_start(at);
            let pushed = self.clock.robot_ready(lib, start, duration);
            if pushed == start {
                return at;
            }
            at = pushed;
        }
    }

    /// Notices drive failures up to `now` in `lib`: marks the drive dead,
    /// emits the failure, and recovers its mounted tape (unmount) so a
    /// surviving drive can fetch it.
    fn reap_failures(&mut self, lib: usize, now: SimTime) {
        let d = self.cfg.library.drives as usize;
        for bay in 0..d {
            let idx = lib * d + bay;
            if self.dead[idx] {
                continue;
            }
            let fail_at = self.clock.drive_fail_at(idx);
            if fail_at <= now {
                self.dead[idx] = true;
                self.audit.emit(
                    now,
                    TraceEvent::DriveFailed {
                        drive: self.drive_id(idx).into(),
                        at: fail_at,
                    },
                );
                if let Some(tape) = self.mounted[idx].take() {
                    self.holder[self.cfg.tape_index(tape)] = None;
                    self.audit.emit(
                        now,
                        TraceEvent::Unmounted {
                            drive: self.drive_id(idx).into(),
                            tape: tape.into(),
                        },
                    );
                }
            }
        }
    }

    /// Begins the exchange bringing `tape` onto `drive`.
    fn begin_switch(
        &mut self,
        drive: usize,
        tape: TapeId,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let (rewind_s, exchange_s) = self.switch_cost(drive);
        let lib = self.drive_id(drive).library.idx();
        if let Some(old) = self.mounted[drive].take() {
            self.holder[self.cfg.tape_index(old)] = None;
            self.audit.emit(
                now,
                TraceEvent::Unmounted {
                    drive: self.drive_id(drive).into(),
                    tape: old.into(),
                },
            );
        }
        self.head[drive] = Bytes::ZERO;
        self.busy[drive] = true;

        let rewind_done = now + SimTime::from_secs(rewind_s);
        let exchange = SimTime::from_secs(exchange_s);
        let at = self.exchange_start(lib, rewind_done, exchange);
        let grant = self.robots[lib].acquire(at, exchange);
        self.mounts += 1;
        self.audit.emit(
            now,
            TraceEvent::ExchangeBegun {
                drive: self.drive_id(drive).into(),
                tape: tape.into(),
                arm: grant.server as u32,
                start: grant.start,
                finish: grant.finish,
            },
        );
        sched.schedule_at(grant.finish, Ev::SwitchDone { drive, tape });
    }

    /// Fills `out` with the policy's candidate list for `lib`, estimating
    /// locate cost against the drive the scheduler would use. Walks only
    /// the library's slot range of the dense queue table, in ascending
    /// index order — the same tape order the old `BTreeMap` scan gave.
    fn fill_candidates(&self, lib: usize, drive: usize, out: &mut Vec<TapeCandidate>) {
        let spec = &self.cfg.library.drive;
        let (rewind_s, exchange_s) = self.switch_cost(drive);
        let est_locate = SimTime::from_secs(rewind_s + exchange_s);
        let cap = self.effective_cap(drive);
        out.clear();
        let tapes = self.cfg.library.tapes as usize;
        for slot in 0..tapes {
            let tape_idx = lib * tapes + slot;
            let queue = &self.pending[tape_idx];
            if queue.is_empty() || self.claimed[tape_idx] || self.holder[tape_idx].is_some() {
                continue;
            }
            let take = if cap == 0 {
                queue.len()
            } else {
                queue.len().min(cap)
            };
            let mut bytes = Bytes::ZERO;
            let mut oldest = SimTime::MAX;
            for &job in queue.iter().take(take) {
                bytes += self.jobs[job].work.bytes();
                oldest = oldest.min(self.requests[self.jobs[job].request].arrival);
            }
            out.push(TapeCandidate {
                tape: TapeId::new(tapesim_model::LibraryId(lib as u16), slot as u16),
                queued_jobs: take,
                queued_bytes: bytes,
                oldest_arrival: oldest,
                est_locate,
                est_service: SimTime::from_secs(spec.transfer_time(bytes)),
            });
        }
    }

    /// Puts every idle drive of `lib` to work: serve already-mounted
    /// tapes first (free batches), then let the policy pick tapes to
    /// fetch onto idle switch drives.
    fn try_dispatch(&mut self, lib: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.reap_failures(lib, now);
        let d = self.cfg.library.drives as usize;
        // Free batches: an idle drive already holding a tape with queued
        // jobs serves them without any exchange.
        for bay in 0..d {
            let idx = lib * d + bay;
            if self.busy[idx] || self.dead[idx] {
                continue;
            }
            if let Some(tape) = self.mounted[idx] {
                if !self.pending[self.cfg.tape_index(tape)].is_empty() {
                    self.start_batch(idx, tape, now, sched);
                }
            }
        }
        // Exchanges: repeatedly pick the cheapest idle switch drive (the
        // per-request engine's victim order) and ask the policy which
        // tape to fetch onto it. Drives whose imminent failure would cut
        // an exchange short are blocked for this dispatch round.
        // `try_dispatch` never re-enters itself, so the member scratch is
        // free here; clearing a per-drive bool vector beats rebuilding a
        // `BTreeSet` every round.
        self.blocked.fill(false);
        loop {
            let mut best: Option<(u8, f64, usize)> = None;
            for bay in 0..d {
                let idx = lib * d + bay;
                if self.busy[idx] || self.dead[idx] || self.blocked[idx] {
                    continue;
                }
                let id = self.drive_id(idx);
                if !self.switch_policy.is_switch_drive(id, self.cfg) {
                    continue;
                }
                let (kind, p) = self
                    .switch_policy
                    .victim_key(self.mounted[idx], self.placement);
                let key = (kind, p, idx);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((_, _, drive)) = best else {
                return;
            };
            let fail_at = self.clock.drive_fail_at(drive);
            if fail_at < SimTime::MAX {
                // The exchange (and the mount it produces) must complete
                // strictly before the drive dies to be worth starting.
                let (rewind_s, exchange_s) = self.switch_cost(drive);
                let exchange = SimTime::from_secs(exchange_s);
                let rewind_done = now + SimTime::from_secs(rewind_s);
                let at = self.exchange_start(lib, rewind_done, exchange);
                let start = self.robots[lib].earliest_start(at);
                if start + exchange > fail_at {
                    self.blocked[drive] = true;
                    continue;
                }
            }
            let mut cands = std::mem::take(&mut self.cands);
            self.fill_candidates(lib, drive, &mut cands);
            let choice = if cands.is_empty() {
                None
            } else {
                self.policy.choose(&cands).and_then(|pick| cands.get(pick))
            };
            let tape = choice.map(|cand| cand.tape);
            self.cands = cands;
            let Some(tape) = tape else {
                return;
            };
            self.claimed[self.cfg.tape_index(tape)] = true;
            self.begin_switch(drive, tape, now, sched);
        }
    }

    /// Terminally resolves a job whose read exhausted its retry budget:
    /// fail over to replica copies on untried tapes when `alternates`
    /// provides one for every extent, otherwise declare the job lost.
    fn resolve_fatal(&mut self, job: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        let req = self.jobs[job].request;
        let mut tried = self.jobs[job].tried.clone();
        tried.push(self.jobs[job].work.tape);

        let mut alt_objects = Vec::with_capacity(self.jobs[job].work.extents.len());
        let mut resolvable = true;
        for e in &self.jobs[job].work.extents {
            let replica = self.alternates.get(&e.object).and_then(|alts| {
                alts.iter()
                    .copied()
                    .find(|&o| !tried.contains(&self.placement.locate(o).tape))
            });
            match replica {
                Some(o) => alt_objects.push(o),
                None => {
                    resolvable = false;
                    break;
                }
            }
        }

        self.outstanding_jobs -= 1;
        self.requests[req].outstanding -= 1;
        if resolvable {
            let replacement_work = tape_jobs(self.placement, &alt_objects);
            self.libs_hit.fill(false);
            let mut first_replacement = None;
            for tj in replacement_work {
                let new_job = self.jobs.len();
                first_replacement.get_or_insert(new_job);
                let tape = tj.tape;
                self.audit.emit(
                    now,
                    TraceEvent::JobSubmitted {
                        job: new_job as u32,
                        tape: tape.into(),
                    },
                );
                self.jobs.push(JobState {
                    request: req,
                    work: Cow::Owned(tj),
                    fatal: false,
                    tried: tried.clone(),
                });
                self.pending[self.cfg.tape_index(tape)].push_back(new_job);
                self.outstanding_jobs += 1;
                self.requests[req].outstanding += 1;
                self.failovers_n += 1;
                self.libs_hit[tape.library.idx()] = true;
            }
            // One FailedOver per fatal job (the auditor counts a second
            // resolution as a double completion); extra replacement jobs
            // are covered by their JobSubmitted events.
            if let Some(replacement) = first_replacement {
                self.audit.emit(
                    now,
                    TraceEvent::FailedOver {
                        job: job as u32,
                        replacement: replacement as u32,
                    },
                );
            }
            for lib in 0..self.libs_hit.len() {
                if self.libs_hit[lib] {
                    self.try_dispatch(lib, now, sched);
                }
            }
        } else {
            self.audit
                .emit(now, TraceEvent::JobLost { job: job as u32 });
            self.requests[req].lost = true;
        }
        if self.requests[req].outstanding == 0 {
            if self.requests[req].lost {
                self.lost_requests += 1;
                self.lost_log.push(self.requests[req].index);
            } else {
                let r = &self.requests[req];
                self.records.push(RequestRecord {
                    request: r.index,
                    arrival: r.arrival,
                    first_start: r.first_start.unwrap_or(r.arrival),
                    finish: now,
                });
            }
        }
    }
}

impl World for SchedSim<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        self.event_class = match ev {
            Ev::Arrive(_) => ARRIVAL_PRIORITY as i8,
            _ => 0,
        };
        match ev {
            Ev::Arrive(i) => {
                let (arrival, ridx) = self.arrivals[i];
                // Copy the catalog reference out of `self` so borrowing a
                // request's jobs does not pin `self` for the whole arm.
                let catalog = self.job_catalog;
                let work = &catalog[ridx];
                if work.is_empty() {
                    // Nothing to stream: served instantaneously.
                    self.records.push(RequestRecord {
                        request: i,
                        arrival,
                        first_start: arrival,
                        finish: arrival,
                    });
                    return;
                }
                let req = self.requests.len();
                self.requests.push(ReqState {
                    index: i,
                    arrival,
                    outstanding: work.len(),
                    first_start: None,
                    first_plan: None,
                    lost: false,
                });
                self.libs_hit.fill(false);
                for tj in work {
                    let job = self.jobs.len();
                    let tape = tj.tape;
                    self.audit.emit(
                        now,
                        TraceEvent::JobSubmitted {
                            job: job as u32,
                            tape: tape.into(),
                        },
                    );
                    self.jobs.push(JobState {
                        request: req,
                        work: Cow::Borrowed(tj),
                        fatal: false,
                        tried: Vec::new(),
                    });
                    self.pending[self.cfg.tape_index(tape)].push_back(job);
                    self.outstanding_jobs += 1;
                    self.libs_hit[tape.library.idx()] = true;
                }
                for lib in 0..self.libs_hit.len() {
                    if self.libs_hit[lib] {
                        self.try_dispatch(lib, now, sched);
                    }
                }
            }
            Ev::SwitchDone { drive, tape } => {
                let tape_idx = self.cfg.tape_index(tape);
                self.mounted[drive] = Some(tape);
                self.holder[tape_idx] = Some(drive as u32);
                self.head[drive] = Bytes::ZERO;
                self.claimed[tape_idx] = false;
                self.audit.emit(
                    now,
                    TraceEvent::Mounted {
                        drive: self.drive_id(drive).into(),
                        tape: tape.into(),
                    },
                );
                self.busy[drive] = false;
                if !self.dead[drive] && self.clock.drive_fail_at(drive) <= now {
                    // The drive died exactly as the exchange completed
                    // (the dispatch pre-check rules out anything later):
                    // recover the tape for a surviving drive.
                    let lib = self.drive_id(drive).library.idx();
                    self.try_dispatch(lib, now, sched);
                    return;
                }
                if !self.pending[tape_idx].is_empty() {
                    self.start_batch(drive, tape, now, sched);
                } else {
                    // The queue drained while the exchange ran (possible
                    // only with a batch cap); re-dispatch the drive.
                    let lib = self.drive_id(drive).library.idx();
                    self.try_dispatch(lib, now, sched);
                }
            }
            Ev::JobDone { drive, job } => {
                if self.jobs[job].fatal {
                    self.resolve_fatal(job, now, sched);
                    return;
                }
                self.audit.emit(
                    now,
                    TraceEvent::JobCompleted {
                        job: job as u32,
                        drive: self.drive_id(drive).into(),
                    },
                );
                self.outstanding_jobs -= 1;
                let req = self.jobs[job].request;
                self.requests[req].outstanding -= 1;
                if self.requests[req].outstanding == 0 {
                    if self.requests[req].lost {
                        self.lost_requests += 1;
                        self.lost_log.push(self.requests[req].index);
                    } else {
                        let r = &self.requests[req];
                        self.records.push(RequestRecord {
                            request: r.index,
                            arrival: r.arrival,
                            first_start: r.first_start.unwrap_or(r.arrival),
                            finish: now,
                        });
                    }
                }
            }
            Ev::BatchDone { drive } => {
                self.busy[drive] = false;
                let lib = self.drive_id(drive).library.idx();
                self.try_dispatch(lib, now, sched);
            }
        }
    }
}

/// Priority class of arrival events. Strictly below the default class
/// (0) every runtime event uses, so an arrival stamped at `t` always
/// fires before same-instant service events regardless of insertion
/// order. The batch gear pre-schedules all arrivals (lowest sequence
/// numbers — they won those ties already); pinning the class instead
/// makes the order insertion-independent, which is what lets the
/// incremental [`ShardEngine`] interleave submissions with event
/// processing and still replay the batch gear bit for bit.
const ARRIVAL_PRIORITY: i32 = -1;

/// Everything one drained [`ShardEngine`] knows at shutdown: the run
/// outcome plus the raw per-request ledger a collector needs to join
/// shard-local completions back to global submissions.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Metrics, audit reports and optional time budget — exactly what
    /// the batch [`run_scheduled`] entry returns for the same stream.
    pub outcome: SchedOutcome,
    /// Per-request completion records in engine completion order
    /// (nondecreasing finish time), each tagged with its submission
    /// index ([`RequestRecord::request`]).
    pub records: Vec<RequestRecord>,
    /// Submission indices of terminally lost requests. Together with
    /// `records` this partitions the accepted submissions: every index
    /// in `0..submitted` appears in exactly one of the two.
    pub lost: Vec<usize>,
    /// Submissions accepted before [`ShardEngine::close`].
    pub submitted: usize,
    /// Submissions rejected after [`ShardEngine::close`].
    pub rejected: u64,
    /// The virtual instant the shard's event queue drained.
    pub end: SimTime,
    /// Order-sensitive operation logs for the parallel merge. Present
    /// only when [`ShardEngine::enable_merge_log`] was called; `None`
    /// in every single-engine and serve path.
    pub merge: Option<MergeOps>,
}

/// The order-sensitive operations a partition performed, each tagged
/// with the [`OpKey`] placing it in the monolithic event order. The
/// parallel merge k-way-merges these across partitions to reproduce the
/// single engine's float fold order bit for bit (see `crate::parallel`).
#[derive(Debug, Clone, Default)]
pub struct MergeOps {
    /// Busy-time deltas in partition event order (already sorted by key
    /// within a partition).
    pub busy: Vec<(OpKey, SimTime)>,
    /// Per local submission index: the key of the planning event that
    /// set the request's `first_start`. Requests served without planning
    /// (empty local work) have no entry.
    pub first_plans: Vec<(usize, OpKey)>,
}

/// A consistent cut of a [`ShardEngine`]'s input: everything needed to
/// rebuild the engine's exact state by deterministic replay.
///
/// The engine's whole state is a pure function of its construction
/// inputs plus the submission sequence (see the determinism notes on
/// [`ShardEngine`]), so the checkpoint *is* the submission log — no
/// event queue, no mount state, no accumulators need serialising.
/// [`ShardEngine::restore`] replays it through a fresh engine and lands
/// on bit-identical records, metrics and audit state. This is what lets
/// the serve supervisor restart a crashed shard from `(seed, shards,
/// checkpoint)` and provably converge with an uncrashed run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// Accepted submissions in order: `(arrival, request rank)`.
    arrivals: Vec<(SimTime, usize)>,
    /// Highest watermark pumped; replay pumps back to it.
    watermark: SimTime,
}

impl EngineCheckpoint {
    /// Builds a checkpoint from an externally kept submission log (the
    /// serve supervisor's per-shard log), pumped through the last
    /// arrival instant — exactly the state of an engine that was fed
    /// `submit(at, rank); pump(at)` per entry.
    pub fn from_arrivals(arrivals: Vec<(SimTime, usize)>) -> EngineCheckpoint {
        let watermark = arrivals.last().map_or(SimTime::ZERO, |&(at, _)| at);
        EngineCheckpoint {
            arrivals,
            watermark,
        }
    }

    /// The logged submissions, in acceptance order.
    pub fn arrivals(&self) -> &[(SimTime, usize)] {
        &self.arrivals
    }

    /// Number of logged submissions.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the checkpoint is empty (a fresh engine).
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// The concurrent scheduling engine as a long-lived, incrementally-fed
/// actor: the shard-safe entry point the `tapesim-serve` runtime wraps
/// one-per-library-shard, and the core the batch [`run_scheduled`] gear
/// is expressed on top of (submit everything, then finish).
///
/// Lifecycle: [`ShardEngine::submit`] admissions (strictly increasing
/// arrival times), [`ShardEngine::pump`] the virtual clock forward after
/// each, [`ShardEngine::close`] to stop admissions (late submissions are
/// rejected, in-flight batches still complete), [`ShardEngine::finish`]
/// to drain, sweep stranded jobs and produce the [`ShardReport`].
///
/// # Determinism
///
/// Feeding the same `(arrival, request)` sequence produces bit-identical
/// results no matter how submissions interleave with pumping: arrivals
/// occupy their own event-priority class (see [`ARRIVAL_PRIORITY`]), and
/// [`ShardEngine::pump`]'s watermark never runs past the last submitted
/// arrival instant, so a later submission can never land behind the
/// clock. `submit → pump(at) → submit → …` therefore replays
/// `submit-all → finish` exactly — pinned by the engine tests and the
/// serve-vs-batch equivalence tests.
pub struct ShardEngine<'a> {
    world: SchedSim<'a>,
    sched: Scheduler<Ev>,
    auditor: TraceAuditor,
    closed: bool,
    rejected: u64,
    watermark: SimTime,
}

impl<'a> ShardEngine<'a> {
    /// Builds an idle engine over `sim`'s mount state. `job_catalog`
    /// maps workload-request ranks to their per-tape jobs — for a
    /// library shard, pre-filtered to the tapes the shard owns (an empty
    /// entry serves instantaneously). The simulator is never mutated.
    pub fn new(
        sim: &'a Simulator,
        policy: &'a dyn SchedPolicy,
        cfg: &SchedConfig,
        plan: &'a FaultPlan,
        alternates: &'a BTreeMap<ObjectId, Vec<ObjectId>>,
        job_catalog: &'a [Vec<TapeJob>],
    ) -> ShardEngine<'a> {
        ShardEngine::new_owned(sim, policy, cfg, plan, alternates, job_catalog, None)
    }

    /// [`ShardEngine::new`] for a single-library partition: the trace
    /// prologue (carried-over mounts) covers only `owned`'s drives, so
    /// the per-partition traces of a parallel run concatenate to exactly
    /// the monolithic trace — same entry counts, same audit verdicts.
    /// `None` keeps the full-fleet prologue.
    pub(crate) fn new_owned(
        sim: &'a Simulator,
        policy: &'a dyn SchedPolicy,
        cfg: &SchedConfig,
        plan: &'a FaultPlan,
        alternates: &'a BTreeMap<ObjectId, Vec<ObjectId>>,
        job_catalog: &'a [Vec<TapeJob>],
        owned: Option<usize>,
    ) -> ShardEngine<'a> {
        let placement = sim.placement();
        let system = placement.config();
        let n_drives = system.total_drives();
        let n_libs = system.libraries as usize;
        let d = system.library.drives as usize;
        let switch_policy = sim.policy();
        let switch_m: Vec<usize> = (0..n_libs)
            .map(|lib| {
                (0..d)
                    .filter(|&bay| {
                        let id = DriveId::new(tapesim_model::LibraryId(lib as u16), bay as u8);
                        switch_policy.is_switch_drive(id, system)
                    })
                    .count()
            })
            .collect();

        // Snapshot only the two mount-state fields dispatch reads (and a
        // reverse index over them) instead of cloning the whole
        // `MountState`.
        let n_tapes = system.total_tapes();
        let mounted: Vec<Option<TapeId>> = sim.state().mounted.clone();
        let head: Vec<Bytes> = sim.state().head.clone();
        let mut holder: Vec<Option<u32>> = vec![None; n_tapes];
        for (drive, slot) in mounted.iter().enumerate() {
            if let Some(tape) = slot {
                holder[system.tape_index(*tape)] = Some(drive as u32);
            }
        }

        let auditor = TraceAuditor::new().with_retry_cap(plan.spec().max_retries);
        let mut world = SchedSim {
            cfg: system,
            placement,
            policy,
            switch_policy,
            batch_cap: cfg.max_batch,
            seek: cfg.seek,
            arrivals: Vec::new(),
            job_catalog,
            mounted,
            head,
            holder,
            busy: vec![false; n_drives],
            robots: vec![Resource::new(system.library.robot.arms.max(1) as usize); n_libs],
            jobs: Vec::new(),
            requests: Vec::new(),
            pending: vec![VecDeque::new(); n_tapes],
            claimed: vec![false; n_tapes],
            outstanding_jobs: 0,
            mounts: 0,
            busy_time: SimTime::ZERO,
            records: Vec::new(),
            audit: Tap::new(cfg, &auditor, system),
            clock: plan.clock(),
            alternates,
            dead: vec![false; n_drives],
            switch_m,
            retries: 0,
            failovers_n: 0,
            lost_requests: 0,
            lost_log: Vec::new(),
            blocked: vec![false; n_drives],
            libs_hit: vec![false; n_libs],
            cands: Vec::new(),
            plan_scratch: Vec::new(),
            event_class: 0,
            busy_log: None,
        };

        // Trace prologue: carried-over mounts, so the transcript is
        // self-contained for the auditor.
        for drive in 0..n_drives {
            if owned.is_some_and(|lib| drive / d != lib) {
                continue;
            }
            if let Some(tape) = world.mounted[drive] {
                world.audit.emit(
                    SimTime::ZERO,
                    TraceEvent::AssumeMounted {
                        drive: world.drive_id(drive).into(),
                        tape: tape.into(),
                    },
                );
            }
        }
        // ... and the plan's jam windows, known up front, so the auditor
        // can check exchanges against them.
        for lib in 0..n_libs {
            for &(start, finish) in world.clock.jams(lib) {
                world.audit.emit(
                    SimTime::ZERO,
                    TraceEvent::RobotJammed {
                        library: lib as u32,
                        start,
                        finish,
                    },
                );
            }
        }

        ShardEngine {
            world,
            sched: Scheduler::new(),
            auditor,
            closed: false,
            rejected: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Rebuilds an engine from a [`EngineCheckpoint`] by replaying its
    /// submission log through a fresh engine: bit-identical state to
    /// the engine the checkpoint was cut from (same records, metrics,
    /// audit transcript — pinned by tests). Construction arguments must
    /// match the original engine's.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        sim: &'a Simulator,
        policy: &'a dyn SchedPolicy,
        cfg: &SchedConfig,
        plan: &'a FaultPlan,
        alternates: &'a BTreeMap<ObjectId, Vec<ObjectId>>,
        job_catalog: &'a [Vec<TapeJob>],
        checkpoint: &EngineCheckpoint,
    ) -> ShardEngine<'a> {
        let mut engine = ShardEngine::new(sim, policy, cfg, plan, alternates, job_catalog);
        for &(at, rank) in &checkpoint.arrivals {
            engine.submit(at, rank);
        }
        engine.pump(checkpoint.watermark);
        engine
    }

    /// Cuts a checkpoint of everything submitted and pumped so far.
    /// Cheap (clones the submission log) and valid at any quiescent
    /// point — the serve supervisor cuts one at every snapshot barrier.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            arrivals: self.world.arrivals.clone(),
            watermark: self.watermark,
        }
    }

    /// Admits one request: `at` is its arrival instant (submissions must
    /// come in nondecreasing arrival order, and `at` must not precede a
    /// watermark already pumped past), `request` its rank in the job
    /// catalog. Returns whether the submission was accepted — after
    /// [`ShardEngine::close`] it is rejected and only counted.
    pub fn submit(&mut self, at: SimTime, request: usize) -> bool {
        if self.closed {
            self.rejected += 1;
            return false;
        }
        let i = self.world.arrivals.len();
        self.world.arrivals.push((at, request));
        self.sched
            .schedule_at_with_priority(at, ARRIVAL_PRIORITY, Ev::Arrive(i));
        true
    }

    /// Processes every event stamped `<= watermark`. Safe — i.e. order
    /// preserving — whenever `watermark` does not exceed the last
    /// submitted arrival instant: arrival gaps are strictly positive, so
    /// no future submission can be stamped at or before it.
    pub fn pump(&mut self, watermark: SimTime) {
        self.watermark = self.watermark.max(watermark);
        self.sched.run_bounded(&mut self.world, watermark, u64::MAX);
    }

    /// Stops admissions: subsequent [`ShardEngine::submit`] calls are
    /// rejected (and counted), while everything already admitted — queued
    /// or in flight — still runs to completion in [`ShardEngine::finish`].
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether [`ShardEngine::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Turns on the order-sensitive operation log consumed by the
    /// parallel merge; [`ShardEngine::finish`] will then carry
    /// [`MergeOps`] in its report. Call before the first submission —
    /// deltas performed earlier are not recorded.
    pub fn enable_merge_log(&mut self) {
        self.world.busy_log.get_or_insert_with(Vec::new);
    }

    /// Submissions accepted so far.
    pub fn submitted(&self) -> usize {
        self.world.arrivals.len()
    }

    /// Submissions rejected after close.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Requests fully served so far.
    pub fn served_so_far(&self) -> u64 {
        self.world.records.len() as u64
    }

    /// Completion records so far, in completion order (nondecreasing
    /// finish time). Grows monotonically — live observers can consume
    /// the suffix they have not seen yet.
    pub fn records(&self) -> &[RequestRecord] {
        &self.world.records
    }

    /// Requests terminally lost so far.
    pub fn lost_so_far(&self) -> u64 {
        self.world.lost_requests
    }

    /// Jobs admitted but not yet completed.
    pub fn outstanding_jobs(&self) -> usize {
        self.world.outstanding_jobs
    }

    /// Tape exchanges performed so far.
    pub fn mounts_so_far(&self) -> u64 {
        self.world.mounts
    }

    /// DES events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.sched.events_processed()
    }

    /// The engine's virtual clock (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Drains the event queue, surfaces unnoticed drive failures, sweeps
    /// stranded jobs into counted losses, and closes the books: metrics,
    /// audit reports, time budget and the submission ledger.
    pub fn finish(self) -> ShardReport {
        let ShardEngine {
            mut world,
            mut sched,
            auditor,
            rejected,
            ..
        } = self;
        let n_drives = world.cfg.total_drives();
        let end = sched.run(&mut world);

        // Failures nobody dispatched past go unnoticed by the event
        // loop; surface them now so the trace blames stranded jobs on
        // something.
        for drive in 0..n_drives {
            let fail_at = world.clock.drive_fail_at(drive);
            if !world.dead[drive] && fail_at < SimTime::MAX {
                world.dead[drive] = true;
                world.audit.emit(
                    end,
                    TraceEvent::DriveFailed {
                        drive: world.drive_id(drive).into(),
                        at: fail_at,
                    },
                );
            }
        }
        // Jobs still queued when the system ran out of feasible drives
        // are terminal losses, never a hang.
        // Dense queues in ascending tape-index order — the same job
        // order the old `BTreeMap::values()` flatten produced.
        let stranded: Vec<usize> = world.pending.iter().flatten().copied().collect();
        for job in stranded {
            world
                .audit
                .emit(end, TraceEvent::JobLost { job: job as u32 });
            world.outstanding_jobs -= 1;
            let req = world.jobs[job].request;
            world.requests[req].outstanding -= 1;
            world.requests[req].lost = true;
            if world.requests[req].outstanding == 0 {
                world.lost_requests += 1;
                world.lost_log.push(world.requests[req].index);
            }
        }
        for queue in &mut world.pending {
            queue.clear();
        }
        assert_eq!(
            world.outstanding_jobs, 0,
            "scheduler drained with unserved jobs — no eligible switch drive \
             exists; check the policy/config (m >= 1 guarantees progress)"
        );
        debug_assert_eq!(
            world.records.len() + world.lost_requests as usize,
            world.arrivals.len()
        );

        let mut metrics = SchedMetrics::new(n_drives as u32);
        for r in &world.records {
            metrics.record(r);
            if world.clock.degraded_at(r.arrival) {
                metrics.record_degraded_sojourn(r);
            }
        }
        metrics.add_mounts(world.mounts);
        metrics.add_busy_time(world.busy_time);
        let first = world.arrivals.first().map_or(SimTime::ZERO, |&(at, _)| at);
        metrics.set_horizon_time(end.saturating_sub(first));
        metrics.set_events(sched.events_processed());
        metrics.add_retries(world.retries);
        metrics.add_failovers(world.failovers_n);
        metrics.add_lost(world.lost_requests);
        if !world.clock.is_zero() {
            let span = end.saturating_sub(first);
            let mut healthy = SimTime::ZERO;
            for drive in 0..n_drives {
                let alive_until = world.clock.drive_fail_at(drive).min(end).max(first);
                healthy += alive_until.saturating_sub(first);
            }
            metrics.set_availability(healthy, span);
        }

        let submitted = world.arrivals.len();
        let merge = world.busy_log.take().map(|busy| MergeOps {
            busy,
            first_plans: world
                .requests
                .iter()
                .filter_map(|r| r.first_plan.map(|k| (r.index, k)))
                .collect(),
        });
        let (reports, budget) = world.audit.finish(&auditor, end);
        ShardReport {
            outcome: SchedOutcome {
                metrics,
                reports,
                budget,
            },
            records: world.records,
            lost: world.lost_log,
            submitted,
            rejected,
            end,
            merge,
        }
    }
}

/// The concurrent shared-queue gear: the batch entry, re-expressed as
/// "submit the whole demand stream, then finish" on the incremental
/// [`ShardEngine`]. Runs on a snapshot of `sim`'s mount state; the
/// simulator itself is not mutated.
pub(crate) fn run_concurrent(
    sim: &Simulator,
    workload: &Workload,
    policy: &dyn SchedPolicy,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
) -> SchedOutcome {
    let placement = sim.placement();
    // Group every distinct request's objects into tape jobs once; the
    // arrival stream samples the same request ranks repeatedly, and the
    // grouping is a pure function of (placement, request).
    let job_catalog: Vec<Vec<TapeJob>> = workload
        .requests()
        .iter()
        .map(|r| tape_jobs(placement, &r.objects))
        .collect();

    // Draw the demand stream exactly as the legacy loop does: arrival
    // time, then request pick, per sample.
    let mut stream = RequestStream::new(cfg.arrivals, workload);
    let mut engine = ShardEngine::new(sim, policy, cfg, plan, alternates, &job_catalog);
    for _ in 0..cfg.samples {
        let (at, ridx) = stream.next_request();
        engine.submit(SimTime::from_secs(at), ridx);
    }
    engine.finish().outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatchByTape, Fcfs, SltfTape};
    use tapesim_model::specs::paper_table1;
    use tapesim_model::Bytes;
    use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
    use tapesim_sim::queue::run_queued;
    use tapesim_workload::{ObjectSizeSpec, RequestSpec, WorkloadSpec};

    fn setup() -> (Simulator, Workload) {
        let w = WorkloadSpec {
            objects: 2_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(4)),
            requests: RequestSpec {
                count: 50,
                min_objects: 15,
                max_objects: 25,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 31,
        }
        .generate();
        let cfg = paper_table1();
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        (Simulator::with_natural_policy(p, 4), w)
    }

    /// A workload whose requested working set overflows the initially
    /// mounted capacity, so runs actually exchange tapes. The light
    /// [`setup`] fixture stays all-mounted (zero switches) by design —
    /// popular objects land on the always-mounted batch — which would
    /// make coalescing and exchange-audit tests vacuous.
    fn heavy_setup() -> (Simulator, Workload) {
        let w = WorkloadSpec {
            objects: 4_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
            requests: RequestSpec {
                count: 60,
                min_objects: 30,
                max_objects: 50,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 17,
        }
        .generate();
        let cfg = paper_table1();
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        (Simulator::with_natural_policy(p, 4), w)
    }

    #[test]
    fn checkpoint_restore_replays_bit_identically() {
        let spec = ArrivalSpec {
            per_hour: 20.0,
            seed: 11,
        };
        let (sim, w) = heavy_setup();
        let cfg = SchedConfig::new(spec, 40).with_audit(true);
        let plan = FaultPlan::zero(sim.placement().config());
        let alternates = BTreeMap::new();
        let catalog: Vec<Vec<TapeJob>> = w
            .requests()
            .iter()
            .map(|r| tape_jobs(sim.placement(), &r.objects))
            .collect();
        let policy = BatchByTape;
        let mut stream = RequestStream::new(spec, &w);
        let draws: Vec<(SimTime, usize)> = (0..40)
            .map(|_| {
                let (at, r) = stream.next_request();
                (SimTime::from_secs(at), r)
            })
            .collect();

        // The uncrashed reference: submit/pump the whole stream.
        let mut continuous = ShardEngine::new(&sim, &policy, &cfg, &plan, &alternates, &catalog);
        for &(at, r) in &draws {
            continuous.submit(at, r);
            continuous.pump(at);
        }
        let base = continuous.finish();

        // Crash after 17 submissions, restore from the checkpoint, feed
        // the remainder: every book must close on the same bits.
        let mut first = ShardEngine::new(&sim, &policy, &cfg, &plan, &alternates, &catalog);
        for &(at, r) in draws.iter().take(17) {
            first.submit(at, r);
            first.pump(at);
        }
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.len(), 17);
        assert!(!ckpt.is_empty());
        drop(first); // the "crash": engine state is gone, checkpoint survives

        let mut restored =
            ShardEngine::restore(&sim, &policy, &cfg, &plan, &alternates, &catalog, &ckpt);
        assert_eq!(restored.submitted(), 17);
        for &(at, r) in draws.iter().skip(17) {
            restored.submit(at, r);
            restored.pump(at);
        }
        let redo = restored.finish();

        assert_eq!(base.records, redo.records);
        assert_eq!(base.submitted, redo.submitted);
        assert_eq!(base.lost, redo.lost);
        assert_eq!(base.end, redo.end);
        assert_eq!(
            base.outcome.metrics.avg_sojourn().to_bits(),
            redo.outcome.metrics.avg_sojourn().to_bits()
        );
        assert_eq!(
            base.outcome.metrics.avg_wait().to_bits(),
            redo.outcome.metrics.avg_wait().to_bits()
        );
        assert_eq!(base.outcome.metrics.mounts(), redo.outcome.metrics.mounts());
        assert_eq!(base.outcome.metrics.events(), redo.outcome.metrics.events());
        assert_eq!(base.outcome.reports.len(), redo.outcome.reports.len());
        assert!(redo.outcome.is_clean());

        // The supervisor's log-built checkpoint is the engine-cut one.
        let log: Vec<(SimTime, usize)> = draws.iter().take(17).copied().collect();
        assert_eq!(EngineCheckpoint::from_arrivals(log), ckpt);
    }

    #[test]
    fn fcfs_reproduces_legacy_queue_bit_for_bit() {
        let spec = ArrivalSpec {
            per_hour: 6.0,
            seed: 9,
        };
        let (mut legacy_sim, w) = setup();
        let legacy = run_queued(&mut legacy_sim, &w, 25, spec);

        let (mut sim, _) = setup();
        let out = run_scheduled(&mut sim, &w, &Fcfs, &SchedConfig::new(spec, 25));
        assert_eq!(out.metrics.served(), legacy.served());
        assert_eq!(out.metrics.avg_wait(), legacy.avg_wait());
        assert_eq!(out.metrics.avg_service(), legacy.avg_service());
        assert_eq!(out.metrics.avg_sojourn(), legacy.avg_sojourn());
        assert_eq!(out.metrics.utilisation(), legacy.utilisation());
        assert!(
            out.metrics.events() > 0,
            "sequential gear must report the per-request engine's summed \
             DES events, not 0"
        );
    }

    #[test]
    fn fcfs_audits_clean() {
        let spec = ArrivalSpec {
            per_hour: 6.0,
            seed: 2,
        };
        let (mut sim, w) = setup();
        let out = run_scheduled(
            &mut sim,
            &w,
            &Fcfs,
            &SchedConfig::new(spec, 10).with_audit(true),
        );
        assert_eq!(out.reports.len(), 10, "one audit per request");
        assert!(out.is_clean(), "{:?}", out.reports);
    }

    #[test]
    fn concurrent_serves_everything_and_audits_clean() {
        let spec = ArrivalSpec {
            per_hour: 20.0,
            seed: 7,
        };
        let (mut sim, w) = setup();
        let out = run_scheduled(
            &mut sim,
            &w,
            &BatchByTape,
            &SchedConfig::new(spec, 40).with_audit(true),
        );
        assert_eq!(out.metrics.served(), 40);
        assert_eq!(out.reports.len(), 1, "one audit for the whole run");
        assert!(out.is_clean(), "{}", out.reports[0]);
        assert!(out.metrics.events() > 0);
        assert!(out.metrics.avg_sojourn() >= out.metrics.avg_wait());
    }

    #[test]
    fn batching_cuts_mounts_in_the_switching_regime() {
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        let (mut fcfs_sim, w) = heavy_setup();
        let fcfs = run_scheduled(&mut fcfs_sim, &w, &Fcfs, &SchedConfig::new(spec, 25));
        let (mut batch_sim, _) = heavy_setup();
        let batch = run_scheduled(
            &mut batch_sim,
            &w,
            &BatchByTape,
            &SchedConfig::new(spec, 25),
        );
        assert!(
            fcfs.metrics.mounts() > 0,
            "fixture must force tape switches"
        );
        assert!(
            batch.metrics.mounts() < fcfs.metrics.mounts(),
            "batching should cut mounts: {} vs {}",
            batch.metrics.mounts(),
            fcfs.metrics.mounts()
        );
    }

    #[test]
    fn switching_regime_audits_clean_for_every_policy() {
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        for kind in crate::policy::PolicyKind::ALL {
            let (mut sim, w) = heavy_setup();
            let out = run_scheduled(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, 25).with_audit(true),
            );
            assert_eq!(out.metrics.served(), 25, "{}", kind.label());
            assert!(out.metrics.mounts() > 0, "{}", kind.label());
            assert!(
                out.is_clean(),
                "{}: {:?}",
                kind.label(),
                out.reports.iter().find(|r| !r.is_clean())
            );
        }
    }

    #[test]
    fn concurrent_leaves_simulator_untouched() {
        let spec = ArrivalSpec {
            per_hour: 20.0,
            seed: 3,
        };
        let (mut sim, w) = setup();
        let _ = run_scheduled(&mut sim, &w, &SltfTape, &SchedConfig::new(spec, 10));
        // Compare against a freshly built fixture instead of snapshotting
        // `sim` — the engine must not need a state clone even here.
        let (fresh, _) = setup();
        assert_eq!(sim.state(), fresh.state());
    }

    /// ROADMAP flagged that `sltf` ties `batch` bit-for-bit in
    /// BENCH_sched.json — suspicious for a policy sorting on a
    /// different key. The tie is real and benign: the bench fixture's
    /// popular objects all land on the initially-mounted tapes
    /// (`mounts == 0` in the bench output), so a drive never goes idle
    /// with an *unmounted* tape queued, the tape-selection hook is
    /// never consulted, and every `choose` policy coincides trivially.
    /// This test pins both halves of that claim: the all-mounted
    /// regime ties bit-for-bit, and a regime with tape pressure —
    /// where the requested working set overflows the mounted capacity
    /// and several tapes queue at once — provably reorders service
    /// (shortest locate+service first vs. longest-waiting first) and
    /// diverges in every serve-order-sensitive metric.
    #[test]
    fn sltf_ties_batch_all_mounted_and_diverges_under_tape_pressure() {
        // Bench regime: light fixture, zero exchanges, policies tie.
        let spec = ArrivalSpec {
            per_hour: 24.0,
            seed: 11,
        };
        let (mut bsim, w) = setup();
        let batch = run_scheduled(&mut bsim, &w, &BatchByTape, &SchedConfig::new(spec, 40));
        let (mut ssim, _) = setup();
        let sltf = run_scheduled(&mut ssim, &w, &SltfTape, &SchedConfig::new(spec, 40));
        assert_eq!(
            batch.metrics.mounts(),
            0,
            "light fixture must stay all-mounted or the tie explanation is wrong"
        );
        assert_eq!(batch.metrics.served(), sltf.metrics.served());
        assert_eq!(
            batch.metrics.avg_wait().to_bits(),
            sltf.metrics.avg_wait().to_bits(),
            "with no tape choice to make the policies must tie bit-for-bit"
        );
        assert_eq!(
            batch.metrics.avg_sojourn().to_bits(),
            sltf.metrics.avg_sojourn().to_bits()
        );

        // Tape-pressure regime: backlog with several unmounted tapes
        // queued, so `choose` actually picks — and the keys disagree.
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        let (mut bsim, w) = heavy_setup();
        let batch = run_scheduled(&mut bsim, &w, &BatchByTape, &SchedConfig::new(spec, 25));
        let (mut ssim, _) = heavy_setup();
        let sltf = run_scheduled(&mut ssim, &w, &SltfTape, &SchedConfig::new(spec, 25));
        assert!(
            batch.metrics.mounts() > 0,
            "pressure fixture must exchange tapes"
        );
        assert_eq!(batch.metrics.served(), sltf.metrics.served());
        assert_ne!(
            batch.metrics.mounts(),
            sltf.metrics.mounts(),
            "shortest-first must re-batch differently than oldest-first"
        );
        assert_ne!(
            batch.metrics.avg_wait().to_bits(),
            sltf.metrics.avg_wait().to_bits(),
            "service reordering must show up in waiting time"
        );
        assert_ne!(
            batch.metrics.avg_sojourn().to_bits(),
            sltf.metrics.avg_sojourn().to_bits()
        );
    }

    #[test]
    fn batch_cap_one_still_serves_everything() {
        let spec = ArrivalSpec {
            per_hour: 25.0,
            seed: 13,
        };
        let (mut sim, w) = setup();
        let out = run_scheduled(
            &mut sim,
            &w,
            &BatchByTape,
            &SchedConfig::new(spec, 20)
                .with_max_batch(1)
                .with_audit(true),
        );
        assert_eq!(out.metrics.served(), 20);
        assert!(out.is_clean(), "{}", out.reports[0]);
    }

    /// Exact pre-fault metric bits, captured on the engine before the
    /// fault subsystem existed (same fixture, `cargo run --example` on
    /// the parent commit). The fault-aware engine must reproduce every
    /// one of them — both through the unchanged [`run_scheduled`] entry
    /// and through [`run_scheduled_faulty`] with a zero plan.
    #[test]
    fn zero_fault_metrics_are_bit_identical_to_pre_fault_engine() {
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        let pinned: [(&str, u64, u64, u64, u64, u64); 3] = [
            (
                "fcfs",
                98,
                0x40c46b755394e20d,
                0x40c65d08bacc077f,
                0x3ff0000000000000,
                0x40d46038dd49a50f,
            ),
            (
                "batch",
                48,
                0x40529d576cca9eda,
                0x40a2447af328a1cc,
                0x3fe5f4e303f928c2,
                0x40a7a7bdf96af35f,
            ),
            (
                "sltf",
                47,
                0x4060241a1ce6234b,
                0x40a35a4a0453991d,
                0x3fe58d3c485b1783,
                0x40ac06b97120ee25,
            ),
        ];
        for (kind, &(label, mounts, wait, sojourn, util, p99)) in
            crate::policy::PolicyKind::ALL.iter().zip(&pinned)
        {
            assert!(kind.label().starts_with(label), "pin order drifted");
            let policy = kind.build();
            let (mut sim, w) = heavy_setup();
            let out = run_scheduled(&mut sim, &w, policy.as_ref(), &SchedConfig::new(spec, 25));

            let (mut fsim, _) = heavy_setup();
            let plan = FaultPlan::zero(fsim.placement().config());
            let fout = run_scheduled_faulty(
                &mut fsim,
                &w,
                policy.as_ref(),
                &SchedConfig::new(spec, 25),
                &plan,
                &BTreeMap::new(),
            );

            for m in [&out.metrics, &fout.metrics] {
                assert_eq!(m.served(), 25, "{label}");
                assert_eq!(m.mounts(), mounts, "{label}");
                assert_eq!(m.avg_wait().to_bits(), wait, "{label} wait");
                assert_eq!(m.avg_sojourn().to_bits(), sojourn, "{label} sojourn");
                assert_eq!(m.utilisation().to_bits(), util, "{label} util");
                assert_eq!(
                    m.sojourn_percentile(99.0).to_bits(),
                    p99,
                    "{label} p99 sojourn"
                );
                assert_eq!((m.retries(), m.failovers(), m.lost()), (0, 0, 0), "{label}");
                assert_eq!(m.availability(), 1.0, "{label}");
            }
        }
    }

    /// Moderate faults on the switching-regime fixture: every request is
    /// served or counted lost, fault work is visible in the metrics, and
    /// the trace still satisfies every auditor invariant (including the
    /// fault ones).
    #[test]
    fn faulty_run_conserves_requests_and_audits_clean() {
        use tapesim_faults::FaultSpec;
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        for kind in crate::policy::PolicyKind::ALL {
            let (mut sim, w) = heavy_setup();
            let plan = FaultPlan::generate(&FaultSpec::moderate(41), sim.placement().config());
            assert!(!plan.is_zero(), "moderate plan must inject something");
            let out = run_scheduled_faulty(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, 25).with_audit(true),
                &plan,
                &BTreeMap::new(),
            );
            assert_eq!(
                out.metrics.served() + out.metrics.lost(),
                25,
                "{}: conservation",
                kind.label()
            );
            assert!(
                out.is_clean(),
                "{}: {:?}",
                kind.label(),
                out.reports.iter().find(|r| !r.is_clean())
            );
            assert!(
                out.metrics.availability() <= 1.0 && out.metrics.availability() > 0.0,
                "{}",
                kind.label()
            );
        }
    }

    /// Streaming (the default) and batch audit modes return identical
    /// reports — and identical metrics — for both gears and for a faulty
    /// concurrent run.
    #[test]
    fn audit_modes_agree_end_to_end() {
        use tapesim_faults::FaultSpec;
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        let plans = [
            FaultPlan::zero(heavy_setup().0.placement().config()),
            FaultPlan::generate(
                &FaultSpec::moderate(41),
                heavy_setup().0.placement().config(),
            ),
        ];
        for kind in crate::policy::PolicyKind::ALL {
            for plan in &plans {
                let run = |mode: AuditMode| {
                    let (mut sim, w) = heavy_setup();
                    run_scheduled_faulty(
                        &mut sim,
                        &w,
                        kind.build().as_ref(),
                        &SchedConfig::new(spec, 25)
                            .with_audit(true)
                            .with_audit_mode(mode),
                        plan,
                        &BTreeMap::new(),
                    )
                };
                let streaming = run(AuditMode::Streaming);
                let batch = run(AuditMode::Batch);
                assert_eq!(
                    streaming.reports,
                    batch.reports,
                    "{} reports diverge across audit modes",
                    kind.label()
                );
                assert_eq!(
                    streaming.metrics.avg_sojourn().to_bits(),
                    batch.metrics.avg_sojourn().to_bits(),
                    "{}: audit mode must not perturb the simulation",
                    kind.label()
                );
            }
        }
    }

    /// With replication-provided alternates, exhausted reads fail over to
    /// the replica instead of becoming losses.
    #[test]
    fn exhausted_reads_fail_over_to_replicas() {
        use tapesim_faults::FaultSpec;
        use tapesim_workload::{replicate_workload, ReplicationSpec};
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        let w = WorkloadSpec {
            objects: 4_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
            requests: RequestSpec {
                count: 60,
                min_objects: 30,
                max_objects: 50,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 17,
        }
        .generate();
        let (replicated, map) = replicate_workload(
            &w,
            ReplicationSpec {
                budget: Bytes::tb(4),
            },
        );
        let alternates = map.alternates();
        assert!(!alternates.is_empty(), "budget must buy copies");
        let cfg = paper_table1();
        let p = ParallelBatchPlacement::with_m(4)
            .place(&replicated, &cfg)
            .unwrap();
        let mut sim = Simulator::with_natural_policy(p, 4);
        // Heavy media faults so retry budgets actually run dry.
        let fspec = FaultSpec {
            bad_spots_per_tape: 40.0,
            drive_mtbf_hours: 0.0,
            jams_per_hour: 0.0,
            ..FaultSpec::moderate(7)
        };
        let plan = FaultPlan::generate(&fspec, sim.placement().config());
        assert!(plan.n_spots() > 0);
        let out = run_scheduled_faulty(
            &mut sim,
            &replicated,
            &BatchByTape,
            &SchedConfig::new(spec, 25).with_audit(true),
            &plan,
            &alternates,
        );
        assert!(out.is_clean(), "{:?}", out.reports.first());
        assert!(out.metrics.retries() > 0, "spots must cost retries");
        assert_eq!(out.metrics.served() + out.metrics.lost(), 25);
        assert!(
            out.metrics.failovers() > 0,
            "dense bad-spots with replicas available must fail over \
             (retries={}, lost={})",
            out.metrics.retries(),
            out.metrics.lost()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = ArrivalSpec {
            per_hour: 15.0,
            seed: 21,
        };
        let (mut a, w) = setup();
        let (mut b, _) = setup();
        let ra = run_scheduled(&mut a, &w, &SltfTape, &SchedConfig::new(spec, 30));
        let rb = run_scheduled(&mut b, &w, &SltfTape, &SchedConfig::new(spec, 30));
        assert_eq!(ra.metrics.avg_sojourn(), rb.metrics.avg_sojourn());
        assert_eq!(ra.metrics.mounts(), rb.metrics.mounts());
        assert_eq!(ra.metrics.events(), rb.metrics.events());
    }

    /// A media-only fault spec: bad-spots only, so the sequential gear
    /// can honour the plan without drive/robot identities.
    fn media_only_spec(seed: u64) -> tapesim_faults::FaultSpec {
        tapesim_faults::FaultSpec {
            bad_spots_per_tape: 20.0,
            drive_mtbf_hours: 0.0,
            jams_per_hour: 0.0,
            ..tapesim_faults::FaultSpec::moderate(seed)
        }
    }

    /// The engine-level acceptance invariant: with observability on,
    /// every gear and every policy produces a budget whose per-resource
    /// categories sum to the makespan within 1e-6 s.
    #[test]
    fn obs_budget_closes_for_every_policy() {
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        for kind in crate::policy::PolicyKind::ALL {
            let (mut sim, w) = heavy_setup();
            let out = run_scheduled(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, 25).with_obs(true),
            );
            let budget = out.budget.expect("obs on must yield a budget");
            assert!(
                budget.sum_error() < 1e-6,
                "{}: closure error {:.3e}",
                kind.label(),
                budget.sum_error()
            );
            assert!(budget.makespan_s > 0.0, "{}", kind.label());
            assert!(
                budget.drive_total(tapesim_obs::SpanKind::Transfer) > 0.0,
                "{}: a served run must transfer",
                kind.label()
            );
        }
    }

    /// Observability must never perturb the simulation: the metric bits
    /// are identical with the accountant on and off, for both gears.
    #[test]
    fn obs_does_not_change_metrics() {
        let spec = ArrivalSpec {
            per_hour: 20.0,
            seed: 7,
        };
        for kind in crate::policy::PolicyKind::ALL {
            let (mut a, w) = heavy_setup();
            let (mut b, _) = heavy_setup();
            let plain = run_scheduled(
                &mut a,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, 20),
            );
            let observed = run_scheduled(
                &mut b,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, 20).with_obs(true),
            );
            assert!(plain.budget.is_none(), "{}", kind.label());
            assert!(observed.budget.is_some(), "{}", kind.label());
            assert_eq!(
                plain.metrics.avg_sojourn(),
                observed.metrics.avg_sojourn(),
                "{}",
                kind.label()
            );
            assert_eq!(
                plain.metrics.mounts(),
                observed.metrics.mounts(),
                "{}",
                kind.label()
            );
            assert_eq!(
                plain.metrics.events(),
                observed.metrics.events(),
                "{}",
                kind.label()
            );
        }
    }

    /// Budgets also close on degraded runs, where `Failed` spans eat
    /// into drive and arm idle time.
    #[test]
    fn obs_budget_closes_under_faults() {
        use tapesim_faults::FaultSpec;
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 3,
        };
        let (mut sim, w) = heavy_setup();
        let plan = FaultPlan::generate(&FaultSpec::moderate(41), sim.placement().config());
        let out = run_scheduled_faulty(
            &mut sim,
            &w,
            &BatchByTape,
            &SchedConfig::new(spec, 25).with_obs(true),
            &plan,
            &BTreeMap::new(),
        );
        let budget = out.budget.expect("obs on must yield a budget");
        assert!(
            budget.sum_error() < 1e-6,
            "closure error {:.3e}",
            budget.sum_error()
        );
        assert!(
            budget.drive_total(tapesim_obs::SpanKind::Failed) > 0.0,
            "a moderate plan fails at least one drive in this fixture"
        );
    }

    /// Differential wall (satellite of ISSUE 5): under media-only fault
    /// plans the sequential FCFS gear reproduces the legacy
    /// `run_queued_faulty` loop *bit for bit* — metrics and
    /// lost/retries/failovers counters — across several seeds.
    #[test]
    fn media_only_fcfs_matches_legacy_queue_bit_for_bit() {
        use tapesim_sim::queue::run_queued_faulty;
        let spec = ArrivalSpec {
            per_hour: 10.0,
            seed: 5,
        };
        for fault_seed in [11u64, 29, 83] {
            let (mut legacy_sim, w) = setup();
            let plan = FaultPlan::generate(
                &media_only_spec(fault_seed),
                legacy_sim.placement().config(),
            );
            assert!(plan.media_only() && !plan.is_zero(), "seed {fault_seed}");
            let (legacy, stats) =
                run_queued_faulty(&mut legacy_sim, &w, 30, spec, &plan, &BTreeMap::new());

            let (mut sim, _) = setup();
            let out = run_scheduled_faulty(
                &mut sim,
                &w,
                &Fcfs,
                &SchedConfig::new(spec, 30),
                &plan,
                &BTreeMap::new(),
            );
            assert_eq!(out.metrics.served(), legacy.served(), "seed {fault_seed}");
            assert_eq!(
                out.metrics.avg_wait(),
                legacy.avg_wait(),
                "seed {fault_seed}"
            );
            assert_eq!(
                out.metrics.avg_service(),
                legacy.avg_service(),
                "seed {fault_seed}"
            );
            assert_eq!(
                out.metrics.avg_sojourn(),
                legacy.avg_sojourn(),
                "seed {fault_seed}"
            );
            assert_eq!(
                out.metrics.utilisation(),
                legacy.utilisation(),
                "seed {fault_seed}"
            );
            assert_eq!(out.metrics.retries(), stats.retries, "seed {fault_seed}");
            assert_eq!(
                out.metrics.failovers(),
                stats.failovers,
                "seed {fault_seed}"
            );
            assert_eq!(out.metrics.lost(), stats.lost, "seed {fault_seed}");
        }
    }

    /// The sequential faulty gear supports the observability tap too:
    /// budgets close, and auditing still works alongside.
    #[test]
    fn sequential_faulty_obs_and_audit_coexist() {
        let spec = ArrivalSpec {
            per_hour: 10.0,
            seed: 5,
        };
        let (mut sim, w) = setup();
        let plan = FaultPlan::generate(&media_only_spec(29), sim.placement().config());
        let out = run_scheduled_faulty(
            &mut sim,
            &w,
            &Fcfs,
            &SchedConfig::new(spec, 30).with_obs(true).with_audit(true),
            &plan,
            &BTreeMap::new(),
        );
        assert!(
            out.is_clean(),
            "{:?}",
            out.reports.iter().find(|r| !r.is_clean())
        );
        assert_eq!(
            out.reports.len() as u64,
            out.metrics.served(),
            "one audit per served request"
        );
        let budget = out.budget.expect("obs on must yield a budget");
        assert!(
            budget.sum_error() < 1e-6,
            "closure error {:.3e}",
            budget.sum_error()
        );
    }

    /// The serve runtime's determinism keystone: feeding the engine one
    /// request at a time, pumping the clock after every admission, must
    /// replay the batch gear (submit-all, then drain) bit for bit.
    #[test]
    fn shard_engine_incremental_matches_batch_bit_for_bit() {
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 5,
        };
        for policy in [&BatchByTape as &dyn SchedPolicy, &SltfTape] {
            let cfg = SchedConfig::new(spec, 30).with_audit(true);
            let (mut batch_sim, w) = heavy_setup();
            let batch = run_scheduled(&mut batch_sim, &w, policy, &cfg);

            let (inc_sim, _) = heavy_setup();
            let placement = inc_sim.placement();
            let catalog: Vec<Vec<TapeJob>> = w
                .requests()
                .iter()
                .map(|r| tape_jobs(placement, &r.objects))
                .collect();
            let plan = FaultPlan::zero(placement.config());
            let alternates = BTreeMap::new();
            let mut engine = ShardEngine::new(&inc_sim, policy, &cfg, &plan, &alternates, &catalog);
            let mut stream = RequestStream::new(spec, &w);
            for _ in 0..30 {
                let (at, ridx) = stream.next_request();
                let at = SimTime::from_secs(at);
                assert!(engine.submit(at, ridx));
                engine.pump(at);
            }
            engine.close();
            let report = engine.finish();
            let inc = &report.outcome;

            assert_eq!(inc.metrics.served(), batch.metrics.served());
            assert_eq!(
                inc.metrics.avg_wait().to_bits(),
                batch.metrics.avg_wait().to_bits()
            );
            assert_eq!(
                inc.metrics.avg_service().to_bits(),
                batch.metrics.avg_service().to_bits()
            );
            assert_eq!(
                inc.metrics.avg_sojourn().to_bits(),
                batch.metrics.avg_sojourn().to_bits()
            );
            assert_eq!(
                inc.metrics.sojourn_percentile(99.0).to_bits(),
                batch.metrics.sojourn_percentile(99.0).to_bits()
            );
            assert_eq!(
                inc.metrics.utilisation().to_bits(),
                batch.metrics.utilisation().to_bits()
            );
            assert_eq!(inc.metrics.mounts(), batch.metrics.mounts());
            assert_eq!(inc.metrics.events(), batch.metrics.events());
            assert!(inc.is_clean() && batch.is_clean());
            assert_eq!(report.submitted, 30);
            assert_eq!(report.records.len() + report.lost.len(), 30);
            // Records carry their submission index and arrive in
            // nondecreasing finish order — the collector join contract.
            let mut seen = [false; 30];
            for r in &report.records {
                assert!(!std::mem::replace(&mut seen[r.request], true));
            }
            for pair in report.records.windows(2) {
                assert!(pair[0].finish <= pair[1].finish);
            }
        }
    }

    /// Satellite: `close()` stops admissions (rejected + counted) while
    /// everything already admitted still drains to completion.
    #[test]
    fn close_rejects_new_submissions_and_drains_in_flight() {
        let spec = ArrivalSpec {
            per_hour: 30.0,
            seed: 11,
        };
        let (sim, w) = heavy_setup();
        let placement = sim.placement();
        let catalog: Vec<Vec<TapeJob>> = w
            .requests()
            .iter()
            .map(|r| tape_jobs(placement, &r.objects))
            .collect();
        let plan = FaultPlan::zero(placement.config());
        let alternates = BTreeMap::new();
        let cfg = SchedConfig::new(spec, 20).with_audit(true);
        let mut engine = ShardEngine::new(&sim, &BatchByTape, &cfg, &plan, &alternates, &catalog);
        let mut stream = RequestStream::new(spec, &w);
        let mut last = SimTime::ZERO;
        for _ in 0..20 {
            let (at, ridx) = stream.next_request();
            last = SimTime::from_secs(at);
            assert!(engine.submit(last, ridx));
        }
        engine.pump(last);
        assert!(
            engine.outstanding_jobs() > 0,
            "heavy requests must still be in flight at the last arrival"
        );

        engine.close();
        assert!(engine.is_closed());
        let (at, ridx) = stream.next_request();
        assert!(!engine.submit(SimTime::from_secs(at), ridx));
        assert!(!engine.submit(last + SimTime::from_secs(3600.0), ridx));
        assert_eq!(engine.rejected(), 2);
        assert_eq!(engine.submitted(), 20);

        let report = engine.finish();
        assert_eq!(report.submitted, 20);
        assert_eq!(report.rejected, 2);
        assert_eq!(
            report.records.len() + report.lost.len(),
            20,
            "every accepted submission is served or counted lost"
        );
        assert_eq!(report.outcome.metrics.served(), report.records.len() as u64);
        assert!(report.outcome.is_clean());
    }
}
