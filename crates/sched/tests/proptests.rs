//! Property tests for the scheduling subsystem.
//!
//! Six families, per the subsystem's contract:
//!
//! 1. **Conservation** — no policy loses or double-serves a request, and
//!    every audited trace is clean, across random seeds/rates.
//! 2. **Regression** — `Fcfs` reproduces the legacy single-request queue
//!    (`sim::queue::run_queued`) metrics exactly (`==` on floats).
//! 3. **Coalescing** — under deep queues (high arrival rates)
//!    `BatchByTape` mounts strictly fewer tapes than `Fcfs` on the same
//!    demand stream. (At shallow depths no dominance holds: shifted
//!    queue timing can cost batching a couple of extra exchanges.)
//! 4. **Fault conservation** — under any generated `FaultPlan` (and with
//!    or without replicas to fail over to) every request is either served
//!    exactly once or counted as a terminal loss, and every audited trace
//!    is clean.
//! 5. **Zero-fault identity** — a generated-but-empty fault plan leaves
//!    every metric bit-identical to the fault-free engine.
//! 6. **Span accounting sanity** — with observability on, every run's
//!    `TimeBudget` closes to within 1e-6, never attributes a negative
//!    span to any resource (idle in particular), and keeps every
//!    per-library overlap ratio inside `[0, 1]`.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tapesim_faults::{FaultPlan, FaultSpec};
use tapesim_model::specs::paper_table1;
use tapesim_model::{Bytes, ObjectId};
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::{
    run_scheduled, run_scheduled_faulty, BatchByTape, Fcfs, PolicyKind, SchedConfig,
};
use tapesim_sim::queue::run_queued;
use tapesim_sim::Simulator;
use tapesim_workload::{
    replicate_workload, ArrivalSpec, ObjectSizeSpec, ReplicationSpec, RequestSpec, Workload,
    WorkloadSpec,
};

fn setup(workload_seed: u64) -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 400,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(2)),
        requests: RequestSpec {
            count: 20,
            min_objects: 5,
            max_objects: 12,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: workload_seed,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w)
}

/// A fixture whose requested working set overflows the initially mounted
/// capacity, so runs exchange tapes — without this the conservation and
/// coalescing properties would hold vacuously (zero mounts everywhere).
fn heavy_setup(workload_seed: u64) -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
        requests: RequestSpec {
            count: 60,
            min_objects: 30,
            max_objects: 50,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: workload_seed,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w)
}

/// The heavy fixture, optionally with replica copies for failover. The
/// placement covers the (possibly replicated) workload.
fn faulty_setup(
    workload_seed: u64,
    replicate: bool,
) -> (Simulator, Workload, BTreeMap<ObjectId, Vec<ObjectId>>) {
    let (_, base) = heavy_setup(workload_seed);
    let (w, alternates) = if replicate {
        let budget = base.total_bytes().scale(0.1);
        let (w, map) = replicate_workload(&base, ReplicationSpec { budget });
        let alts = map.alternates();
        (w, alts)
    } else {
        (base, BTreeMap::new())
    };
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w, alternates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn no_policy_loses_or_double_serves(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..25,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        for kind in PolicyKind::ALL {
            let (mut sim, w) = heavy_setup(17);
            let out = run_scheduled(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples).with_audit(true),
            );
            prop_assert_eq!(
                out.metrics.served(),
                samples as u64,
                "{} lost or duplicated requests",
                kind.label()
            );
            prop_assert!(
                out.is_clean(),
                "{} produced a dirty trace",
                kind.label()
            );
        }
    }

    #[test]
    fn fcfs_matches_legacy_queue_exactly(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..30,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        let (mut legacy_sim, w) = setup(23);
        let legacy = run_queued(&mut legacy_sim, &w, samples, spec);
        let (mut sim, _) = setup(23);
        let out = run_scheduled(&mut sim, &w, &Fcfs, &SchedConfig::new(spec, samples));
        prop_assert_eq!(out.metrics.served(), legacy.served());
        prop_assert_eq!(out.metrics.avg_wait(), legacy.avg_wait());
        prop_assert_eq!(out.metrics.avg_service(), legacy.avg_service());
        prop_assert_eq!(out.metrics.avg_sojourn(), legacy.avg_sojourn());
        prop_assert_eq!(out.metrics.utilisation(), legacy.utilisation());
    }

    #[test]
    fn batching_mounts_fewer_under_deep_queues(
        seed in 0u64..1_000,
        rate in 100u32..400,
        samples in 10usize..30,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate as f64,
            seed,
        };
        let (mut fcfs_sim, w) = heavy_setup(29);
        let fcfs = run_scheduled(&mut fcfs_sim, &w, &Fcfs, &SchedConfig::new(spec, samples));
        let (mut batch_sim, _) = heavy_setup(29);
        let batch = run_scheduled(
            &mut batch_sim,
            &w,
            &BatchByTape,
            &SchedConfig::new(spec, samples),
        );
        // Coalescing does not dominate mount-for-mount at shallow queue
        // depths: merging requests shifts when drives free up, and the
        // changed interleaving can cost extra exchanges on sparse streams
        // (observed 123-vs-122 and 67-vs-64 at 10-60 req/h, both
        // reproduced on the pre-fault engine — a property of the policy,
        // not a regression). The subsystem's documented claim (DESIGN §9)
        // is the deep-queue one: FCFS mount counts are rate-independent
        // while batching coalesces more as queues deepen, so at high
        // arrival rates batching mounts strictly fewer tapes.
        prop_assert!(
            batch.metrics.mounts() < fcfs.metrics.mounts(),
            "batching did not mount fewer under load: {} vs {}",
            batch.metrics.mounts(),
            fcfs.metrics.mounts()
        );
    }

    #[test]
    fn faults_conserve_requests_and_audit_clean(
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        intensity_tenths in 1u32..40,
        samples in 5usize..20,
        replicate in any::<bool>(),
    ) {
        let spec = ArrivalSpec { per_hour: 25.0, seed };
        let fspec = FaultSpec::moderate(fault_seed)
            .scaled(intensity_tenths as f64 / 10.0);
        for kind in PolicyKind::ALL {
            let (mut sim, w, alternates) = faulty_setup(17, replicate);
            let plan = FaultPlan::generate(&fspec, &paper_table1());
            let out = run_scheduled_faulty(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples).with_audit(true),
                &plan,
                &alternates,
            );
            prop_assert_eq!(
                out.metrics.served() + out.metrics.lost(),
                samples as u64,
                "{} violated served-or-lost conservation",
                kind.label()
            );
            prop_assert!(
                out.is_clean(),
                "{} produced a dirty trace under faults",
                kind.label()
            );
        }
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_fault_free(
        seed in 0u64..1_000,
        samples in 5usize..20,
    ) {
        let spec = ArrivalSpec { per_hour: 20.0, seed };
        let plan = FaultPlan::zero(&paper_table1());
        for kind in PolicyKind::ALL {
            let (mut sim, w) = heavy_setup(17);
            let base = run_scheduled(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples),
            );
            let (mut sim2, _) = heavy_setup(17);
            let out = run_scheduled_faulty(
                &mut sim2,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples),
                &plan,
                &BTreeMap::new(),
            );
            prop_assert_eq!(out.metrics.served(), base.metrics.served());
            prop_assert_eq!(out.metrics.mounts(), base.metrics.mounts());
            prop_assert_eq!(
                out.metrics.avg_wait().to_bits(),
                base.metrics.avg_wait().to_bits()
            );
            prop_assert_eq!(
                out.metrics.avg_sojourn().to_bits(),
                base.metrics.avg_sojourn().to_bits()
            );
            prop_assert_eq!(
                out.metrics.utilisation().to_bits(),
                base.metrics.utilisation().to_bits()
            );
            prop_assert_eq!(out.metrics.lost(), 0);
            prop_assert_eq!(out.metrics.retries(), 0);
            prop_assert_eq!(out.metrics.failovers(), 0);
        }
    }

    /// Family 6: span accounting never yields a negative span. The
    /// accountant derives idle as `makespan − busy − failed`; on any
    /// seed/rate/policy (fault-free and faulty) that remainder — and
    /// every attributed category — must be ≥ 0 on every drive and arm,
    /// with the budget still closing to 1e-6 and overlap ratios in
    /// `[0, 1]`.
    #[test]
    fn span_accounting_never_negative(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..25,
        faulty in any::<bool>(),
    ) {
        use tapesim_obs::SpanKind;
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        for kind in PolicyKind::ALL {
            let (mut sim, w) = heavy_setup(17);
            let cfg = SchedConfig::new(spec, samples).with_obs(true);
            let out = if faulty {
                let plan = FaultPlan::generate(
                    &FaultSpec::moderate(seed),
                    sim.placement().config(),
                );
                run_scheduled_faulty(
                    &mut sim,
                    &w,
                    kind.build().as_ref(),
                    &cfg,
                    &plan,
                    &BTreeMap::new(),
                )
            } else {
                run_scheduled(&mut sim, &w, kind.build().as_ref(), &cfg)
            };
            let budget = out.budget.expect("obs on must yield a budget");
            prop_assert!(
                budget.sum_error() < 1e-6,
                "{}: closure error {:.3e}",
                kind.label(),
                budget.sum_error()
            );
            for r in budget.drives.iter().chain(budget.arms.iter()) {
                for sk in SpanKind::ALL {
                    prop_assert!(
                        r.spans.get(sk) >= 0.0,
                        "{}: negative {sk:?} span {:.3e}",
                        kind.label(),
                        r.spans.get(sk)
                    );
                }
            }
            for o in &budget.overlap {
                let ratio = o.ratio();
                prop_assert!(
                    (0.0..=1.0).contains(&ratio),
                    "{}: overlap ratio {ratio} outside [0, 1] (library {})",
                    kind.label(),
                    o.library
                );
            }
        }
    }
}
