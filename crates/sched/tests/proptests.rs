//! Property tests for the scheduling subsystem.
//!
//! Three families, per the subsystem's contract:
//!
//! 1. **Conservation** — no policy loses or double-serves a request, and
//!    every audited trace is clean, across random seeds/rates.
//! 2. **Regression** — `Fcfs` reproduces the legacy single-request queue
//!    (`sim::queue::run_queued`) metrics exactly (`==` on floats).
//! 3. **Coalescing** — `BatchByTape` never mounts more tapes than `Fcfs`
//!    on the same demand stream.

use proptest::prelude::*;
use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::{run_scheduled, BatchByTape, Fcfs, PolicyKind, SchedConfig};
use tapesim_sim::queue::run_queued;
use tapesim_sim::Simulator;
use tapesim_workload::{ArrivalSpec, ObjectSizeSpec, RequestSpec, Workload, WorkloadSpec};

fn setup(workload_seed: u64) -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 400,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(2)),
        requests: RequestSpec {
            count: 20,
            min_objects: 5,
            max_objects: 12,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: workload_seed,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w)
}

/// A fixture whose requested working set overflows the initially mounted
/// capacity, so runs exchange tapes — without this the conservation and
/// coalescing properties would hold vacuously (zero mounts everywhere).
fn heavy_setup(workload_seed: u64) -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
        requests: RequestSpec {
            count: 60,
            min_objects: 30,
            max_objects: 50,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: workload_seed,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn no_policy_loses_or_double_serves(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..25,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        for kind in PolicyKind::ALL {
            let (mut sim, w) = heavy_setup(17);
            let out = run_scheduled(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples).with_audit(true),
            );
            prop_assert_eq!(
                out.metrics.served(),
                samples as u64,
                "{} lost or duplicated requests",
                kind.label()
            );
            prop_assert!(
                out.is_clean(),
                "{} produced a dirty trace",
                kind.label()
            );
        }
    }

    #[test]
    fn fcfs_matches_legacy_queue_exactly(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..30,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        let (mut legacy_sim, w) = setup(23);
        let legacy = run_queued(&mut legacy_sim, &w, samples, spec);
        let (mut sim, _) = setup(23);
        let out = run_scheduled(&mut sim, &w, &Fcfs, &SchedConfig::new(spec, samples));
        prop_assert_eq!(out.metrics.served(), legacy.served());
        prop_assert_eq!(out.metrics.avg_wait(), legacy.avg_wait());
        prop_assert_eq!(out.metrics.avg_service(), legacy.avg_service());
        prop_assert_eq!(out.metrics.avg_sojourn(), legacy.avg_sojourn());
        prop_assert_eq!(out.metrics.utilisation(), legacy.utilisation());
    }

    #[test]
    fn batching_never_mounts_more_than_fcfs(
        seed in 0u64..1_000,
        rate in 10u32..60,
        samples in 10usize..30,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate as f64,
            seed,
        };
        let (mut fcfs_sim, w) = heavy_setup(29);
        let fcfs = run_scheduled(&mut fcfs_sim, &w, &Fcfs, &SchedConfig::new(spec, samples));
        let (mut batch_sim, _) = heavy_setup(29);
        let batch = run_scheduled(
            &mut batch_sim,
            &w,
            &BatchByTape,
            &SchedConfig::new(spec, samples),
        );
        prop_assert!(
            batch.metrics.mounts() <= fcfs.metrics.mounts(),
            "batching mounted more: {} vs {}",
            batch.metrics.mounts(),
            fcfs.metrics.mounts()
        );
    }
}
