//! Property tests for the scheduling subsystem.
//!
//! Six families, per the subsystem's contract:
//!
//! 1. **Conservation** — no policy loses or double-serves a request, and
//!    every audited trace is clean, across random seeds/rates.
//! 2. **Regression** — `Fcfs` reproduces the legacy single-request queue
//!    (`sim::queue::run_queued`) metrics exactly (`==` on floats).
//! 3. **Coalescing** — under deep queues (high arrival rates)
//!    `BatchByTape` mounts strictly fewer tapes than `Fcfs` on the same
//!    demand stream. (At shallow depths no dominance holds: shifted
//!    queue timing can cost batching a couple of extra exchanges.)
//! 4. **Fault conservation** — under any generated `FaultPlan` (and with
//!    or without replicas to fail over to) every request is either served
//!    exactly once or counted as a terminal loss, and every audited trace
//!    is clean.
//! 5. **Zero-fault identity** — a generated-but-empty fault plan leaves
//!    every metric bit-identical to the fault-free engine.
//! 6. **Span accounting sanity** — with observability on, every run's
//!    `TimeBudget` closes to within 1e-6, never attributes a negative
//!    span to any resource (idle in particular), and keeps every
//!    per-library overlap ratio inside `[0, 1]`.
//! 7. **Parallel equivalence** — across random (seed, rate, samples,
//!    threads, window) the partitioned window engine reproduces the
//!    monolithic gear bit for bit: metric floats, served/mount/event
//!    counts, audit verdicts and summed trace-entry counts — fault-free
//!    and under generated fault plans alike.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tapesim_faults::{FaultPlan, FaultSpec};
use tapesim_model::specs::paper_table1;
use tapesim_model::{Bytes, ObjectId};
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::{
    run_scheduled, run_scheduled_faulty, run_scheduled_faulty_parallel, run_scheduled_parallel,
    BatchByTape, Fcfs, ParallelConfig, PolicyKind, SchedConfig, SchedOutcome,
};
use tapesim_sim::queue::run_queued;
use tapesim_sim::Simulator;
use tapesim_workload::{
    replicate_workload, ArrivalSpec, ObjectSizeSpec, ReplicationSpec, RequestSpec, Workload,
    WorkloadSpec,
};

fn setup(workload_seed: u64) -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 400,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(2)),
        requests: RequestSpec {
            count: 20,
            min_objects: 5,
            max_objects: 12,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: workload_seed,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w)
}

/// A fixture whose requested working set overflows the initially mounted
/// capacity, so runs exchange tapes — without this the conservation and
/// coalescing properties would hold vacuously (zero mounts everywhere).
fn heavy_setup(workload_seed: u64) -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
        requests: RequestSpec {
            count: 60,
            min_objects: 30,
            max_objects: 50,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: workload_seed,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w)
}

/// The heavy fixture, optionally with replica copies for failover. The
/// placement covers the (possibly replicated) workload.
fn faulty_setup(
    workload_seed: u64,
    replicate: bool,
) -> (Simulator, Workload, BTreeMap<ObjectId, Vec<ObjectId>>) {
    let (_, base) = heavy_setup(workload_seed);
    let (w, alternates) = if replicate {
        let budget = base.total_bytes().scale(0.1);
        let (w, map) = replicate_workload(&base, ReplicationSpec { budget });
        let alts = map.alternates();
        (w, alts)
    } else {
        (base, BTreeMap::new())
    };
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4)
        .place(&w, &cfg)
        .expect("placement");
    (Simulator::with_natural_policy(p, 4), w, alternates)
}

/// Bitwise outcome equality for the parallel-equivalence family: metric
/// floats by `to_bits`, counters by `==`, audits by verdict and by the
/// golden wall's view (trace counts summed across reports — the
/// monolithic engine emits one report, the partitioned run one per
/// library).
fn assert_outcomes_identical(par: &SchedOutcome, mono: &SchedOutcome) {
    let (p, m) = (&par.metrics, &mono.metrics);
    prop_assert_eq!(p.served(), m.served());
    prop_assert_eq!(p.mounts(), m.mounts());
    prop_assert_eq!(p.events(), m.events());
    prop_assert_eq!(p.lost(), m.lost());
    prop_assert_eq!(p.retries(), m.retries());
    prop_assert_eq!(p.failovers(), m.failovers());
    prop_assert_eq!(p.degraded_served(), m.degraded_served());
    prop_assert_eq!(p.avg_wait().to_bits(), m.avg_wait().to_bits());
    prop_assert_eq!(p.avg_service().to_bits(), m.avg_service().to_bits());
    prop_assert_eq!(p.avg_sojourn().to_bits(), m.avg_sojourn().to_bits());
    prop_assert_eq!(p.utilisation().to_bits(), m.utilisation().to_bits());
    prop_assert_eq!(p.availability().to_bits(), m.availability().to_bits());
    prop_assert_eq!(
        p.sojourn_percentile(0.95).to_bits(),
        m.sojourn_percentile(0.95).to_bits()
    );
    let pv = p.sojourn_seconds();
    let mv = m.sojourn_seconds();
    prop_assert_eq!(pv.len(), mv.len());
    for (a, b) in pv.iter().zip(mv.iter()) {
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }
    prop_assert_eq!(par.is_clean(), mono.is_clean());
    let sum = |out: &SchedOutcome| {
        out.reports.iter().fold([0usize; 7], |mut acc, r| {
            for (slot, n) in acc.iter_mut().zip([
                r.entries,
                r.jobs,
                r.transfers,
                r.exchanges,
                r.faults,
                r.losses,
                r.failovers,
            ]) {
                *slot += n;
            }
            acc
        })
    };
    prop_assert_eq!(sum(par), sum(mono));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn no_policy_loses_or_double_serves(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..25,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        for kind in PolicyKind::ALL {
            let (mut sim, w) = heavy_setup(17);
            let out = run_scheduled(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples).with_audit(true),
            );
            prop_assert_eq!(
                out.metrics.served(),
                samples as u64,
                "{} lost or duplicated requests",
                kind.label()
            );
            prop_assert!(
                out.is_clean(),
                "{} produced a dirty trace",
                kind.label()
            );
        }
    }

    #[test]
    fn fcfs_matches_legacy_queue_exactly(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..30,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        let (mut legacy_sim, w) = setup(23);
        let legacy = run_queued(&mut legacy_sim, &w, samples, spec);
        let (mut sim, _) = setup(23);
        let out = run_scheduled(&mut sim, &w, &Fcfs, &SchedConfig::new(spec, samples));
        prop_assert_eq!(out.metrics.served(), legacy.served());
        prop_assert_eq!(out.metrics.avg_wait(), legacy.avg_wait());
        prop_assert_eq!(out.metrics.avg_service(), legacy.avg_service());
        prop_assert_eq!(out.metrics.avg_sojourn(), legacy.avg_sojourn());
        prop_assert_eq!(out.metrics.utilisation(), legacy.utilisation());
    }

    #[test]
    fn batching_mounts_fewer_under_deep_queues(
        seed in 0u64..1_000,
        rate in 100u32..400,
        samples in 10usize..30,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate as f64,
            seed,
        };
        let (mut fcfs_sim, w) = heavy_setup(29);
        let fcfs = run_scheduled(&mut fcfs_sim, &w, &Fcfs, &SchedConfig::new(spec, samples));
        let (mut batch_sim, _) = heavy_setup(29);
        let batch = run_scheduled(
            &mut batch_sim,
            &w,
            &BatchByTape,
            &SchedConfig::new(spec, samples),
        );
        // Coalescing does not dominate mount-for-mount at shallow queue
        // depths: merging requests shifts when drives free up, and the
        // changed interleaving can cost extra exchanges on sparse streams
        // (observed 123-vs-122 and 67-vs-64 at 10-60 req/h, both
        // reproduced on the pre-fault engine — a property of the policy,
        // not a regression). The subsystem's documented claim (DESIGN §9)
        // is the deep-queue one: FCFS mount counts are rate-independent
        // while batching coalesces more as queues deepen, so at high
        // arrival rates batching mounts strictly fewer tapes.
        prop_assert!(
            batch.metrics.mounts() < fcfs.metrics.mounts(),
            "batching did not mount fewer under load: {} vs {}",
            batch.metrics.mounts(),
            fcfs.metrics.mounts()
        );
    }

    #[test]
    fn faults_conserve_requests_and_audit_clean(
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        intensity_tenths in 1u32..40,
        samples in 5usize..20,
        replicate in any::<bool>(),
    ) {
        let spec = ArrivalSpec { per_hour: 25.0, seed };
        let fspec = FaultSpec::moderate(fault_seed)
            .scaled(intensity_tenths as f64 / 10.0);
        for kind in PolicyKind::ALL {
            let (mut sim, w, alternates) = faulty_setup(17, replicate);
            let plan = FaultPlan::generate(&fspec, &paper_table1());
            let out = run_scheduled_faulty(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples).with_audit(true),
                &plan,
                &alternates,
            );
            prop_assert_eq!(
                out.metrics.served() + out.metrics.lost(),
                samples as u64,
                "{} violated served-or-lost conservation",
                kind.label()
            );
            prop_assert!(
                out.is_clean(),
                "{} produced a dirty trace under faults",
                kind.label()
            );
        }
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_fault_free(
        seed in 0u64..1_000,
        samples in 5usize..20,
    ) {
        let spec = ArrivalSpec { per_hour: 20.0, seed };
        let plan = FaultPlan::zero(&paper_table1());
        for kind in PolicyKind::ALL {
            let (mut sim, w) = heavy_setup(17);
            let base = run_scheduled(
                &mut sim,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples),
            );
            let (mut sim2, _) = heavy_setup(17);
            let out = run_scheduled_faulty(
                &mut sim2,
                &w,
                kind.build().as_ref(),
                &SchedConfig::new(spec, samples),
                &plan,
                &BTreeMap::new(),
            );
            prop_assert_eq!(out.metrics.served(), base.metrics.served());
            prop_assert_eq!(out.metrics.mounts(), base.metrics.mounts());
            prop_assert_eq!(
                out.metrics.avg_wait().to_bits(),
                base.metrics.avg_wait().to_bits()
            );
            prop_assert_eq!(
                out.metrics.avg_sojourn().to_bits(),
                base.metrics.avg_sojourn().to_bits()
            );
            prop_assert_eq!(
                out.metrics.utilisation().to_bits(),
                base.metrics.utilisation().to_bits()
            );
            prop_assert_eq!(out.metrics.lost(), 0);
            prop_assert_eq!(out.metrics.retries(), 0);
            prop_assert_eq!(out.metrics.failovers(), 0);
        }
    }

    /// Family 6: span accounting never yields a negative span. The
    /// accountant derives idle as `makespan − busy − failed`; on any
    /// seed/rate/policy (fault-free and faulty) that remainder — and
    /// every attributed category — must be ≥ 0 on every drive and arm,
    /// with the budget still closing to 1e-6 and overlap ratios in
    /// `[0, 1]`.
    #[test]
    fn span_accounting_never_negative(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..25,
        faulty in any::<bool>(),
    ) {
        use tapesim_obs::SpanKind;
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        for kind in PolicyKind::ALL {
            let (mut sim, w) = heavy_setup(17);
            let cfg = SchedConfig::new(spec, samples).with_obs(true);
            let out = if faulty {
                let plan = FaultPlan::generate(
                    &FaultSpec::moderate(seed),
                    sim.placement().config(),
                );
                run_scheduled_faulty(
                    &mut sim,
                    &w,
                    kind.build().as_ref(),
                    &cfg,
                    &plan,
                    &BTreeMap::new(),
                )
            } else {
                run_scheduled(&mut sim, &w, kind.build().as_ref(), &cfg)
            };
            let budget = out.budget.expect("obs on must yield a budget");
            prop_assert!(
                budget.sum_error() < 1e-6,
                "{}: closure error {:.3e}",
                kind.label(),
                budget.sum_error()
            );
            for r in budget.drives.iter().chain(budget.arms.iter()) {
                for sk in SpanKind::ALL {
                    prop_assert!(
                        r.spans.get(sk) >= 0.0,
                        "{}: negative {sk:?} span {:.3e}",
                        kind.label(),
                        r.spans.get(sk)
                    );
                }
            }
            for o in &budget.overlap {
                let ratio = o.ratio();
                prop_assert!(
                    (0.0..=1.0).contains(&ratio),
                    "{}: overlap ratio {ratio} outside [0, 1] (library {})",
                    kind.label(),
                    o.library
                );
            }
        }
    }

    /// Family 7 (fault-free): any (seed, rate, samples) × (threads,
    /// window) point produces the monolithic bits through the
    /// partitioned engine, for every policy including the sequential
    /// baseline (which must route around partitioning entirely).
    #[test]
    fn parallel_run_is_bit_identical_to_sequential(
        seed in 0u64..1_000,
        rate_tenths in 5u32..400,
        samples in 5usize..25,
        threads in 1usize..9,
        window in 1usize..96,
    ) {
        let spec = ArrivalSpec {
            per_hour: rate_tenths as f64 / 10.0,
            seed,
        };
        let cfg = SchedConfig::new(spec, samples).with_audit(true);
        let par_cfg = ParallelConfig::on()
            .with_threads(threads)
            .with_window(window);
        for kind in PolicyKind::ALL {
            let (mut mono_sim, w) = heavy_setup(17);
            let mono = run_scheduled_parallel(
                &mut mono_sim,
                &w,
                kind.build().as_ref(),
                &cfg,
                &ParallelConfig::off(),
            );
            let (mut par_sim, _) = heavy_setup(17);
            let par = run_scheduled_parallel(
                &mut par_sim,
                &w,
                kind.build().as_ref(),
                &cfg,
                &par_cfg,
            );
            assert_outcomes_identical(&par, &mono);
        }
    }

    /// Family 7 (faulty): the same equivalence under generated fault
    /// plans — drive failures, robot jams and media bad-spots — with no
    /// replica map (failover would make the run ineligible and fall back,
    /// which the fallback tests already pin).
    #[test]
    fn parallel_faulty_run_is_bit_identical_to_sequential(
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        intensity_tenths in 1u32..40,
        samples in 5usize..20,
        threads in 1usize..9,
        window in 1usize..96,
    ) {
        let spec = ArrivalSpec { per_hour: 25.0, seed };
        let fspec = FaultSpec::moderate(fault_seed)
            .scaled(intensity_tenths as f64 / 10.0);
        let cfg = SchedConfig::new(spec, samples).with_audit(true);
        let par_cfg = ParallelConfig::on()
            .with_threads(threads)
            .with_window(window);
        let alternates = BTreeMap::new();
        for kind in PolicyKind::ALL {
            let plan = FaultPlan::generate(&fspec, &paper_table1());
            let (mut mono_sim, w) = heavy_setup(17);
            let mono = run_scheduled_faulty_parallel(
                &mut mono_sim,
                &w,
                kind.build().as_ref(),
                &cfg,
                &plan,
                &alternates,
                &ParallelConfig::off(),
            );
            let (mut par_sim, _) = heavy_setup(17);
            let par = run_scheduled_faulty_parallel(
                &mut par_sim,
                &w,
                kind.build().as_ref(),
                &cfg,
                &plan,
                &alternates,
                &par_cfg,
            );
            assert_outcomes_identical(&par, &mono);
        }
    }
}
