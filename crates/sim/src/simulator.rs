//! The simulator facade.
//!
//! A [`Simulator`] owns a placement, a switch policy and the persistent
//! mount state, and serves requests one at a time (the §6 operating model:
//! restore requests arrive far apart, so the request queue is always
//! empty). [`Simulator::run_sampled`] reproduces the paper's measurement
//! loop: draw requests from the pre-defined set according to their Zipf
//! popularity and average the metrics (the paper draws 200).

use crate::catalog::tape_jobs;
use crate::engine::{serve_request_seek, MountState};
use crate::metrics::{RequestMetrics, RunMetrics};
use crate::policy::SwitchPolicy;
use crate::seek_order::SeekPolicy;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use tapesim_model::{ObjectId, SystemConfig};
use tapesim_placement::Placement;
use tapesim_workload::Workload;

/// The multiple-tape-library simulator.
pub struct Simulator {
    config: SystemConfig,
    placement: Placement,
    policy: SwitchPolicy,
    seek: SeekPolicy,
    state: MountState,
}

impl Simulator {
    /// Creates a simulator in the startup state (initial mounts applied).
    pub fn new(placement: Placement, policy: SwitchPolicy) -> Simulator {
        let config = *placement.config();
        let state = MountState::new(policy.initial_mounts(&placement, &config));
        Simulator {
            config,
            placement,
            policy,
            seek: SeekPolicy::Greedy,
            state,
        }
    }

    /// Convenience: the natural policy for the placement
    /// ([`SwitchPolicy::for_placement`]) with the given `m`.
    pub fn with_natural_policy(placement: Placement, m: u8) -> Simulator {
        let policy = SwitchPolicy::for_placement(&placement, m);
        Simulator::new(placement, policy)
    }

    /// Builder form of [`Simulator::set_seek`].
    pub fn with_seek(mut self, seek: SeekPolicy) -> Simulator {
        self.seek = seek;
        self
    }

    /// Selects the in-tape service-order planner. The default
    /// ([`SeekPolicy::Greedy`]) reproduces the pre-policy engine bit for
    /// bit; per-tape-local, so switch behaviour and tape selection are
    /// untouched.
    pub fn set_seek(&mut self, seek: SeekPolicy) {
        self.seek = seek;
    }

    /// The active seek policy.
    pub fn seek(&self) -> SeekPolicy {
        self.seek
    }

    /// The placement being simulated.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The active switch policy.
    pub fn policy(&self) -> SwitchPolicy {
        self.policy
    }

    /// Current mount state (for inspection in tests/diagnostics).
    pub fn state(&self) -> &MountState {
        &self.state
    }

    /// Restores the startup mount state.
    pub fn reset(&mut self) {
        self.state = MountState::new(self.policy.initial_mounts(&self.placement, &self.config));
    }

    /// Serves one request for `objects`; mount state persists to the next
    /// call.
    pub fn serve(&mut self, objects: &[ObjectId]) -> RequestMetrics {
        let jobs = tape_jobs(&self.placement, objects);
        serve_request_seek(
            &self.config,
            &self.placement,
            &self.policy,
            &mut self.state,
            jobs,
            false,
            self.seek,
        )
        .0
    }

    /// Serves one request and returns the event timeline alongside the
    /// metrics (mounts, exchanges, streams, completions — the
    /// `tapesim serve --trace` view).
    pub fn serve_traced(&mut self, objects: &[ObjectId]) -> (RequestMetrics, tapesim_des::Tracer) {
        let jobs = tape_jobs(&self.placement, objects);
        serve_request_seek(
            &self.config,
            &self.placement,
            &self.policy,
            &mut self.state,
            jobs,
            true,
            self.seek,
        )
    }

    /// Serves `samples` requests drawn from `workload`'s pre-defined set by
    /// popularity (deterministic for a given `seed`) and aggregates.
    pub fn run_sampled(&mut self, workload: &Workload, samples: usize, seed: u64) -> RunMetrics {
        let mut run = RunMetrics::new();
        for metrics in self.run_sampled_detailed(workload, samples, seed) {
            run.push(&metrics);
        }
        run
    }

    /// Like [`Simulator::run_sampled`], but traces every request and runs
    /// the [`tapesim_des::TraceAuditor`] over each per-request transcript
    /// (the per-request clock restarts at zero, so requests are audited
    /// independently). Returns the aggregate metrics and every audit
    /// report, one per request in service order.
    pub fn run_sampled_audited(
        &mut self,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> (RunMetrics, Vec<tapesim_des::AuditReport>) {
        let sampler = workload.request_sampler();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let auditor = tapesim_des::TraceAuditor::new();
        let mut run = RunMetrics::new();
        let mut reports = Vec::with_capacity(samples);
        for _ in 0..samples {
            let idx = sampler.sample(&mut rng);
            let (metrics, tracer) = self.serve_traced(&workload.requests()[idx].objects);
            run.push(&metrics);
            reports.push(auditor.audit(tracer.entries()));
        }
        (run, reports)
    }

    /// Like [`Simulator::run_sampled`], but returns every per-request
    /// measurement — for tail-latency analysis (p95/p99 restore times) and
    /// any custom aggregation.
    pub fn run_sampled_detailed(
        &mut self,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> Vec<RequestMetrics> {
        let sampler = workload.request_sampler();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..samples)
            .map(|_| {
                let idx = sampler.sample(&mut rng);
                self.serve(&workload.requests()[idx].objects)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::Bytes;
    use tapesim_placement::{
        ClusterProbabilityPlacement, ObjectProbabilityPlacement, ParallelBatchPlacement,
        PlacementPolicy,
    };
    use tapesim_workload::{ObjectSizeSpec, RequestSpec, WorkloadSpec};

    /// A miniature paper-shaped workload that runs fast.
    fn small_workload() -> Workload {
        WorkloadSpec {
            objects: 3_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(2)),
            requests: RequestSpec {
                count: 60,
                min_objects: 20,
                max_objects: 30,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 7,
        }
        .generate()
    }

    #[test]
    fn end_to_end_all_three_schemes() {
        let cfg = paper_table1();
        let w = small_workload();
        let schemes: Vec<(&str, Box<dyn PlacementPolicy>)> = vec![
            ("pbp", Box::new(ParallelBatchPlacement::with_m(4))),
            ("opp", Box::new(ObjectProbabilityPlacement::default())),
            ("cpp", Box::new(ClusterProbabilityPlacement::default())),
        ];
        for (name, scheme) in schemes {
            let placement = scheme.place(&w, &cfg).unwrap();
            placement.verify_against(&w).unwrap();
            let mut sim = Simulator::with_natural_policy(placement, 4);
            let run = sim.run_sampled(&w, 40, 99);
            assert_eq!(run.count(), 40, "{name}");
            assert!(run.avg_response() > 0.0, "{name}");
            assert!(run.avg_bandwidth_mbs() > 0.0, "{name}");
            // Sanity: bandwidth cannot exceed the aggregate drive rate.
            let max_mbs = cfg.total_drives() as f64 * 80.0;
            assert!(
                run.avg_bandwidth_mbs() <= max_mbs,
                "{name}: {} > {max_mbs}",
                run.avg_bandwidth_mbs()
            );
            // Decomposition holds on averages.
            assert!(
                (run.avg_switch() + run.avg_seek() + run.avg_transfer() - run.avg_response()).abs()
                    < 1e-6,
                "{name}"
            );
        }
    }

    #[test]
    fn audit_is_clean_for_all_three_schemes() {
        let cfg = paper_table1();
        let w = small_workload();
        let schemes: Vec<(&str, Box<dyn PlacementPolicy>)> = vec![
            ("pbp", Box::new(ParallelBatchPlacement::with_m(4))),
            ("opp", Box::new(ObjectProbabilityPlacement::default())),
            ("cpp", Box::new(ClusterProbabilityPlacement::default())),
        ];
        for (name, scheme) in schemes {
            let placement = scheme.place(&w, &cfg).unwrap();
            let mut sim = Simulator::with_natural_policy(placement, 4);
            let (run, reports) = sim.run_sampled_audited(&w, 15, 99);
            assert_eq!(run.count(), 15, "{name}");
            assert_eq!(reports.len(), 15, "{name}");
            for (i, report) in reports.iter().enumerate() {
                assert!(report.is_clean(), "{name} request {i}: {report}");
            }
            assert!(
                reports.iter().any(|r| r.transfers > 0),
                "{name}: audits saw no transfers — tracing is broken"
            );
        }
    }

    #[test]
    fn audit_rejects_a_corrupted_trace() {
        use tapesim_des::{TraceAuditor, TraceEvent, ViolationKind};

        let cfg = paper_table1();
        let w = small_workload();
        let placement = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let mut sim = Simulator::with_natural_policy(placement, 4);
        let (_, tracer) = sim.serve_traced(&w.requests()[0].objects);
        let mut entries = tracer.entries().to_vec();
        assert!(TraceAuditor::new().audit(&entries).is_clean());

        // Corrupt the trace: duplicate a transfer shifted to start midway
        // through the original window — two overlapping streams on one
        // drive, which no legal schedule can produce.
        let pos = entries
            .iter()
            .position(|e| matches!(e.event, TraceEvent::Transfer { .. }))
            .expect("the request streams at least one transfer");
        let mut forged = entries[pos];
        if let TraceEvent::Transfer { start, finish, .. } = entries[pos].event {
            let midway = start + (finish.saturating_sub(start)) / 2.0;
            forged.time = midway;
            if let TraceEvent::Transfer { start, .. } = &mut forged.event {
                *start = midway;
            }
        }
        entries.insert(pos + 1, forged);

        let report = TraceAuditor::new().audit(&entries);
        assert!(!report.is_clean());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::DriveOverlap { .. })),
            "expected a drive-exclusivity violation: {report}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = paper_table1();
        let w = small_workload();
        let place = || ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let mut sim1 = Simulator::with_natural_policy(place(), 4);
        let mut sim2 = Simulator::with_natural_policy(place(), 4);
        let r1 = sim1.run_sampled(&w, 30, 5);
        let r2 = sim2.run_sampled(&w, 30, 5);
        assert_eq!(r1.avg_response(), r2.avg_response());
        assert_eq!(r1.avg_bandwidth_mbs(), r2.avg_bandwidth_mbs());
    }

    #[test]
    fn reset_restores_startup_state() {
        let cfg = paper_table1();
        let w = small_workload();
        let placement = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let mut sim = Simulator::with_natural_policy(placement, 4);
        let initial = sim.state().clone();
        sim.run_sampled(&w, 10, 1);
        sim.reset();
        assert_eq!(*sim.state(), initial);
    }

    #[test]
    fn pbp_beats_cpp_on_bandwidth_for_the_default_shape() {
        // The headline qualitative claim on a small instance: parallel
        // batch placement outperforms cluster probability placement, which
        // has no transfer parallelism.
        let cfg = paper_table1();
        let w = small_workload();
        let pbp = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let cpp = ClusterProbabilityPlacement::default()
            .place(&w, &cfg)
            .unwrap();
        let bw_pbp = Simulator::with_natural_policy(pbp, 4)
            .run_sampled(&w, 60, 3)
            .avg_bandwidth_mbs();
        let bw_cpp = Simulator::with_natural_policy(cpp, 4)
            .run_sampled(&w, 60, 3)
            .avg_bandwidth_mbs();
        assert!(
            bw_pbp > bw_cpp,
            "parallel batch {bw_pbp:.1} MB/s should beat cluster probability {bw_cpp:.1} MB/s"
        );
    }
}
