//! Switch policies: which tapes are mounted at startup, which drives may
//! swap cartridges, and which mounted cartridge to evict.
//!
//! * [`SwitchPolicy::Batch`] is the paper's §5.2 strategy for parallel
//!   batch placement: `d−m` drives per library pin the first tape batch
//!   forever; the other `m` drives rotate through the switch batches.
//! * [`SwitchPolicy::LeastPopular`] is the classic strategy the baselines
//!   run under (\[11\]: keeping the highest-probability tapes mounted with
//!   least-popular replacement minimises the number of switches): every
//!   drive may switch, the startup mounts are each library's most probable
//!   tapes, and the eviction victim is the least probable mounted tape.

use serde::{Deserialize, Serialize};
use tapesim_model::{DriveId, SystemConfig, TapeId};
use tapesim_placement::{Placement, TapeRole};

/// Runtime tape-switch strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchPolicy {
    /// §5.2: pinned batch on the first `d−m` bays, switch pool on the rest.
    Batch {
        /// Switch drives per library (`m`).
        m: u8,
    },
    /// Baselines: all drives switchable, least-popular eviction.
    LeastPopular,
}

impl SwitchPolicy {
    /// The natural policy for a placement: [`SwitchPolicy::Batch`] when the
    /// placement pinned tapes (parallel batch placement sets
    /// [`TapeRole::Pinned`]), [`SwitchPolicy::LeastPopular`] otherwise.
    pub fn for_placement(placement: &Placement, m: u8) -> SwitchPolicy {
        if placement.pinned_tapes().is_empty() {
            SwitchPolicy::LeastPopular
        } else {
            SwitchPolicy::Batch { m }
        }
    }

    /// Whether `drive` is allowed to swap cartridges at all.
    pub fn is_switch_drive(&self, drive: DriveId, config: &SystemConfig) -> bool {
        match self {
            SwitchPolicy::Batch { m } => drive.bay >= config.library.drives - m,
            SwitchPolicy::LeastPopular => true,
        }
    }

    /// Startup mounts: one optional tape per drive, dense drive order.
    pub fn initial_mounts(
        &self,
        placement: &Placement,
        config: &SystemConfig,
    ) -> Vec<Option<TapeId>> {
        let d = config.library.drives;
        let mut mounts: Vec<Option<TapeId>> = vec![None; config.total_drives()];
        match self {
            SwitchPolicy::Batch { m } => {
                // Pinned tapes go to the pinned bays (slot i → bay i); the
                // first switch batch goes to the switch bays.
                for lib in config.library_ids() {
                    for bay in 0..d {
                        let tape = TapeId::new(lib, bay as u16);
                        let drive = DriveId::new(lib, bay);
                        let want_pinned = bay < d - m;
                        let ok = match placement.role(tape) {
                            TapeRole::Pinned => want_pinned,
                            TapeRole::SwitchPool { batch } => !want_pinned && batch == 1,
                            TapeRole::Unused => false,
                        };
                        if ok {
                            mounts[config.drive_index(drive)] = Some(tape);
                        }
                    }
                }
            }
            SwitchPolicy::LeastPopular => {
                // Per library: the d most probable non-empty tapes, the
                // hottest on bay 0.
                for lib in config.library_ids() {
                    let mut tapes: Vec<TapeId> = (0..config.library.tapes)
                        .map(|slot| TapeId::new(lib, slot))
                        .filter(|&t| !placement.tape_layout(t).is_empty())
                        .collect();
                    tapes.sort_by(|&a, &b| {
                        // Probabilities are finite, so IEEE total order is
                        // the numeric order.
                        placement
                            .tape_probability(b)
                            .total_cmp(&placement.tape_probability(a))
                            .then(a.cmp(&b))
                    });
                    for (bay, &tape) in tapes.iter().take(d as usize).enumerate() {
                        let drive = DriveId::new(lib, bay as u8);
                        mounts[config.drive_index(drive)] = Some(tape);
                    }
                }
            }
        }
        mounts
    }

    /// Eviction preference among idle switchable drives: lower key = better
    /// victim. Empty drives are the best victims (no rewind/unload);
    /// otherwise the least probable mounted tape goes first.
    pub fn victim_key(&self, mounted: Option<TapeId>, placement: &Placement) -> (u8, f64) {
        match mounted {
            None => (0, 0.0),
            Some(t) => (1, placement.tape_probability(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::{Bytes, LibraryId, ObjectId};
    use tapesim_placement::{ParallelBatchPlacement, PlacementBuilder, PlacementPolicy};
    use tapesim_workload::{ObjectRecord, Request, Workload};

    fn pbp_workload() -> Workload {
        let objects = (0..400u32)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(20),
            })
            .collect();
        let total: f64 = (1..=20).map(|i| i as f64).sum();
        let requests = (0..20u32)
            .map(|r| Request {
                rank: r,
                probability: (20 - r) as f64 / total,
                objects: (r * 20..(r + 1) * 20).map(ObjectId).collect(),
            })
            .collect();
        Workload::new(objects, requests)
    }

    #[test]
    fn batch_policy_mounts_pinned_and_first_switch_batch() {
        let cfg = paper_table1();
        let w = pbp_workload();
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let policy = SwitchPolicy::for_placement(&p, 4);
        assert_eq!(policy, SwitchPolicy::Batch { m: 4 });

        let mounts = policy.initial_mounts(&p, &cfg);
        assert_eq!(mounts.len(), 24);
        for lib in cfg.library_ids() {
            for bay in 0..8u8 {
                let drive = DriveId::new(lib, bay);
                let mounted = mounts[cfg.drive_index(drive)];
                if bay < 4 {
                    // Pinned bays carry pinned tapes.
                    if let Some(t) = mounted {
                        assert_eq!(p.role(t), TapeRole::Pinned, "{drive}");
                        assert_eq!(t.library, lib);
                    }
                } else if let Some(t) = mounted {
                    assert_eq!(p.role(t), TapeRole::SwitchPool { batch: 1 }, "{drive}");
                }
            }
        }
        // Switchability is bay-based.
        assert!(!policy.is_switch_drive(DriveId::new(LibraryId(0), 3), &cfg));
        assert!(policy.is_switch_drive(DriveId::new(LibraryId(0), 4), &cfg));
    }

    #[test]
    fn least_popular_mounts_hottest_tapes() {
        let cfg = paper_table1();
        // Hand-build: three tapes in library 0 with probabilities
        // 0.2 / 0.5 / 0.3.
        let objects = (0..3u32)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(1),
            })
            .collect();
        let w = Workload::new(
            objects,
            vec![Request {
                rank: 0,
                probability: 1.0,
                objects: (0..3).map(ObjectId).collect(),
            }],
        );
        let mut b = PlacementBuilder::new(&cfg, &w);
        let lib = LibraryId(0);
        b.append(TapeId::new(lib, 10), ObjectId(0), Bytes::gb(1), 0.2)
            .unwrap();
        b.append(TapeId::new(lib, 11), ObjectId(1), Bytes::gb(1), 0.5)
            .unwrap();
        b.append(TapeId::new(lib, 12), ObjectId(2), Bytes::gb(1), 0.3)
            .unwrap();
        let p = b.build().unwrap();

        let policy = SwitchPolicy::for_placement(&p, 4);
        assert_eq!(policy, SwitchPolicy::LeastPopular);
        let mounts = policy.initial_mounts(&p, &cfg);
        // Library 0, bay 0 mounts the hottest tape (slot 11).
        assert_eq!(
            mounts[cfg.drive_index(DriveId::new(lib, 0))],
            Some(TapeId::new(lib, 11))
        );
        assert_eq!(
            mounts[cfg.drive_index(DriveId::new(lib, 1))],
            Some(TapeId::new(lib, 12))
        );
        // Other libraries hold nothing.
        assert_eq!(mounts[cfg.drive_index(DriveId::new(LibraryId(1), 0))], None);
    }

    #[test]
    fn victim_preference() {
        let cfg = paper_table1();
        let w = pbp_workload();
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let policy = SwitchPolicy::LeastPopular;
        let empty = policy.victim_key(None, &p);
        let used = p.used_tapes();
        let k1 = policy.victim_key(Some(used[0]), &p);
        assert!(empty < k1, "empty drives evict first");
    }
}
