//! # tapesim-sim
//!
//! The multiple-tape-library simulator (§6 "Simulator" of the ICPP 2006
//! paper), built on the [`tapesim_des`] engine and the [`tapesim_model`]
//! hardware models.
//!
//! Semantics implemented exactly as the paper describes them:
//!
//! * one request in service at a time (restore requests arrive far apart,
//!   so queueing time is zero by assumption); mount state and head
//!   positions persist across requests;
//! * requested objects on mounted tapes are served before those tapes can
//!   be unmounted; tape switches target drives whose mounted tape holds no
//!   outstanding requested objects;
//! * one robot per library (FCFS); robots across libraries and all drives
//!   work independently, without forced synchronisation;
//! * object seek / tape rewind use the linear positioning model; objects on
//!   a tape are served in a seek-optimised order; transfers stream at the
//!   drive's native rate;
//! * the response time of a request is the largest per-drive service time;
//!   the request's seek and transfer times are those of the last-finishing
//!   drive, and its switch time is the residual
//!   `response − (seek + transfer)`;
//! * the effective data retrieval bandwidth of a request is
//!   `requested bytes / response time`.
//!
//! The entry point is [`Simulator`]; switch behaviour (which drives may
//! swap tapes, which mounted tape to evict) is a [`SwitchPolicy`].

pub mod catalog;
pub mod engine;
pub mod metrics;
pub mod policy;
pub mod queue;
pub mod seek_order;
pub mod simulator;

pub use metrics::{RequestMetrics, RunMetrics};
pub use policy::SwitchPolicy;
pub use seek_order::SeekPolicy;
pub use simulator::Simulator;
