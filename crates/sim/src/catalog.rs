//! The object indexing database (§6): request → per-tape service jobs.
//!
//! "Integrated with the simulator is an indexing database that stores
//! object locations as well as other object properties such as object size
//! information. Given a request, the corresponding tapes are identified
//! based on the object indexing database."

use tapesim_model::tape::Extent;
use tapesim_model::{Bytes, ObjectId, TapeId};
use tapesim_placement::Placement;

/// The work one tape owes a request: which extents to read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeJob {
    /// The cartridge.
    pub tape: TapeId,
    /// Requested extents on it, ascending offset (the engine seek-orders
    /// them against the live head position at service time).
    pub extents: Vec<Extent>,
}

impl TapeJob {
    /// Total requested bytes on this tape.
    pub fn bytes(&self) -> Bytes {
        self.extents.iter().map(|e| e.size).sum()
    }
}

/// Groups a request's objects into per-tape jobs.
///
/// Jobs are returned **sorted by descending total bytes** (ties by tape
/// id), the dispatch order the engine uses: starting the largest pending
/// job first is the classic LPT heuristic for the per-library makespan.
///
/// Duplicate object ids in `objects` are served once (a restore does not
/// read the same object twice).
pub fn tape_jobs(placement: &Placement, objects: &[ObjectId]) -> Vec<TapeJob> {
    // Flat sort-and-group instead of a HashSet + BTreeMap-of-Vecs: this
    // runs once per request template at engine setup, and the per-node /
    // per-bucket allocations of the map-based version dominated the
    // scheduler's allocation profile (`BENCH_perf.json` `sched.allocs`).
    // The stable sort keeps equal (tape, offset) pairs — duplicate
    // requests for the same object — in first-occurrence order, so
    // `dedup_by` retains exactly the occurrence the old HashSet kept.
    let mut pairs: Vec<(TapeId, Extent)> = Vec::with_capacity(objects.len());
    for &o in objects {
        let loc = placement.locate(o);
        pairs.push((
            loc.tape,
            Extent {
                object: o,
                offset: loc.offset,
                size: loc.size,
            },
        ));
    }
    pairs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.offset.cmp(&b.1.offset)));
    pairs.dedup_by(|a, b| a.0 == b.0 && a.1.object == b.1.object);

    // Count the groups first so the jobs vec is sized in one allocation
    // — collecting straight from `chunk_by` (no size hint) grows by
    // doubling, and this function's allocations are gated by the perf
    // bench.
    let groups = pairs.chunk_by(|a, b| a.0 == b.0).count();
    let mut jobs: Vec<TapeJob> = Vec::with_capacity(groups);
    jobs.extend(pairs.chunk_by(|a, b| a.0 == b.0).filter_map(|group| {
        let tape = group.first()?.0;
        Some(TapeJob {
            tape,
            extents: group.iter().map(|p| p.1).collect(),
        })
    }));
    jobs.sort_by(|a, b| b.bytes().cmp(&a.bytes()).then(a.tape.cmp(&b.tape)));
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::{LibraryId, TapeId};
    use tapesim_placement::PlacementBuilder;
    use tapesim_workload::{ObjectRecord, Request, Workload};

    fn setup() -> Placement {
        let cfg = paper_table1();
        let objects: Vec<ObjectRecord> = (0..6)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb((i + 1) as u64),
            })
            .collect();
        let w = Workload::new(
            objects,
            vec![Request {
                rank: 0,
                probability: 1.0,
                objects: (0..6).map(ObjectId).collect(),
            }],
        );
        let mut b = PlacementBuilder::new(&cfg, &w);
        let t0 = TapeId::new(LibraryId(0), 0);
        let t1 = TapeId::new(LibraryId(1), 0);
        // Objects 0,2,4 on t0; 1,3,5 on t1.
        for i in [0u32, 2, 4] {
            b.append(t0, ObjectId(i), Bytes::gb((i + 1) as u64), 0.1)
                .unwrap();
        }
        for i in [1u32, 3, 5] {
            b.append(t1, ObjectId(i), Bytes::gb((i + 1) as u64), 0.1)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn groups_by_tape_sorted_by_bytes() {
        let p = setup();
        let jobs = tape_jobs(&p, &[ObjectId(0), ObjectId(1), ObjectId(3), ObjectId(4)]);
        assert_eq!(jobs.len(), 2);
        // t0 carries 0 (1 GB) + 4 (5 GB) = 6 GB; t1 carries 1+3 = 2+4 = 6 GB.
        // Tie: t0 < t1.
        assert_eq!(jobs[0].tape, TapeId::new(LibraryId(0), 0));
        assert_eq!(jobs[0].bytes(), Bytes::gb(6));
        assert_eq!(jobs[1].bytes(), Bytes::gb(6));
        // Extents ascending by offset.
        assert!(jobs[0].extents[0].offset < jobs[0].extents[1].offset);
    }

    #[test]
    fn duplicates_served_once() {
        let p = setup();
        let jobs = tape_jobs(&p, &[ObjectId(2), ObjectId(2), ObjectId(2)]);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].extents.len(), 1);
    }

    #[test]
    fn empty_request_no_jobs() {
        let p = setup();
        assert!(tape_jobs(&p, &[]).is_empty());
    }
}
