//! Queued operation: restore requests arriving faster than they finish.
//!
//! The paper assumes restore requests arrive "one by one … with long time
//! interval between two requests", so queueing time is zero (§6). This
//! module drops that assumption: requests arrive as a Poisson stream and
//! are served FCFS, one at a time (the operating model stays
//! single-request — what changes is that a request may have to *wait*).
//! A scheme's bandwidth advantage then compounds: shorter services drain
//! the queue faster, so the waiting-time gap between schemes grows without
//! bound as the arrival rate approaches the slower scheme's saturation
//! point.
//!
//! The arrival stream itself lives in [`tapesim_workload::arrivals`]
//! (re-exported here) so that the concurrent scheduler (`tapesim-sched`)
//! sees *the same arrival instants* for the same [`ArrivalSpec`] — its
//! FCFS policy reproduces this module's metrics bit for bit.

use crate::simulator::Simulator;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use tapesim_des::stats::Welford;
use tapesim_workload::Workload;

pub use tapesim_workload::{ArrivalProcess, ArrivalSpec};

/// Aggregated queueing metrics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct QueueMetrics {
    wait: Welford,
    service: Welford,
    sojourn: Welford,
    busy: f64,
    horizon: f64,
}

impl QueueMetrics {
    /// Mean time from arrival to service start, seconds.
    pub fn avg_wait(&self) -> f64 {
        self.wait.mean()
    }

    /// Mean service (response) time, seconds.
    pub fn avg_service(&self) -> f64 {
        self.service.mean()
    }

    /// Mean time from arrival to completion, seconds.
    pub fn avg_sojourn(&self) -> f64 {
        self.sojourn.mean()
    }

    /// 0..=1-ish offered-load estimate: total service time over the span
    /// from first arrival to last completion (can exceed 1 transiently —
    /// an unstable queue never catches up).
    pub fn utilisation(&self) -> f64 {
        if self.horizon <= 0.0 {
            0.0
        } else {
            self.busy / self.horizon
        }
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.sojourn.count()
    }
}

/// One served request of a queued run: its arrival, service start and
/// service duration, in seconds from the run's t = 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueRecord {
    /// Arrival instant.
    pub arrival: f64,
    /// Service start (`max(arrival, previous completion)`).
    pub start: f64,
    /// Service (response) duration.
    pub service: f64,
}

impl QueueRecord {
    /// Time spent waiting in the queue.
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }

    /// Completion instant.
    pub fn finish(&self) -> f64 {
        self.start + self.service
    }

    /// Arrival-to-completion time.
    pub fn sojourn(&self) -> f64 {
        self.finish() - self.arrival
    }
}

/// Serves `samples` popularity-drawn requests arriving as a Poisson stream
/// through `sim`, FCFS. The simulator's mount state persists across
/// services exactly as in the paper's operating model.
pub fn run_queued(
    sim: &mut Simulator,
    workload: &Workload,
    samples: usize,
    arrivals: ArrivalSpec,
) -> QueueMetrics {
    run_queued_detailed(sim, workload, samples, arrivals).0
}

/// Like [`run_queued`], but also returns one [`QueueRecord`] per served
/// request (in service order) for percentile/tail analysis.
pub fn run_queued_detailed(
    sim: &mut Simulator,
    workload: &Workload,
    samples: usize,
    arrivals: ArrivalSpec,
) -> (QueueMetrics, Vec<QueueRecord>) {
    let mut stream = ArrivalProcess::new(arrivals);
    let sampler = workload.request_sampler();
    let mut pick_rng = ChaCha12Rng::seed_from_u64(arrivals.seed ^ 0x9A3E);

    let mut metrics = QueueMetrics::default();
    let mut records = Vec::with_capacity(samples);
    let mut server_free = 0.0;
    let mut first_arrival = None;
    for _ in 0..samples {
        let clock = stream.next_arrival();
        first_arrival.get_or_insert(clock);
        let idx = sampler.sample(&mut pick_rng);
        let request = &workload.requests()[idx];

        let start = clock.max(server_free);
        let response = sim.serve(&request.objects).response;
        server_free = start + response;

        metrics.wait.push(start - clock);
        metrics.service.push(response);
        metrics.sojourn.push(server_free - clock);
        metrics.busy += response;
        records.push(QueueRecord {
            arrival: clock,
            start,
            service: response,
        });
    }
    metrics.horizon = server_free - first_arrival.unwrap_or(0.0);
    (metrics, records)
}

/// [`run_queued`] with span time accounting: serves through the traced
/// engine, stitches each request's local-clock trace onto the run axis at
/// its service start, and returns the run's
/// [`tapesim_obs::TimeBudget`] beside the metrics. The metric bits are
/// identical to [`run_queued`] — the accountant only reads the trace.
pub fn run_queued_observed(
    sim: &mut Simulator,
    workload: &Workload,
    samples: usize,
    arrivals: ArrivalSpec,
) -> (QueueMetrics, tapesim_obs::TimeBudget) {
    use tapesim_des::SimTime;
    use tapesim_obs::{TimeAccountant, Topology};

    let mut stream = ArrivalProcess::new(arrivals);
    let sampler = workload.request_sampler();
    let mut pick_rng = ChaCha12Rng::seed_from_u64(arrivals.seed ^ 0x9A3E);

    let cfg = sim.placement().config();
    let mut acct = TimeAccountant::new(Topology {
        libraries: cfg.libraries as u32,
        drives_per_library: cfg.library.drives as u32,
        arms_per_library: cfg.library.robot.arms.max(1) as u32,
        tapes_per_library: cfg.library.tapes as u32,
        load_secs: cfg.library.drive.load_time,
        unload_secs: cfg.library.drive.unload_time,
    });

    let mut metrics = QueueMetrics::default();
    let mut server_free = 0.0;
    let mut first_arrival = None;
    for _ in 0..samples {
        let clock = stream.next_arrival();
        first_arrival.get_or_insert(clock);
        let idx = sampler.sample(&mut pick_rng);
        let request = &workload.requests()[idx];

        let start = clock.max(server_free);
        let (r, tracer) = sim.serve_traced(&request.objects);
        let offset = SimTime::from_secs(start);
        for entry in tracer.entries() {
            acct.observe_shifted(offset, entry.time, &entry.event);
        }
        server_free = start + r.response;

        metrics.wait.push(start - clock);
        metrics.service.push(r.response);
        metrics.sojourn.push(server_free - clock);
        metrics.busy += r.response;
    }
    metrics.horizon = server_free - first_arrival.unwrap_or(0.0);
    let budget = acct.finish(SimTime::from_secs(server_free));
    (metrics, budget)
}

/// Fault accounting of one [`run_queued_faulty`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueFaultStats {
    /// Read retries burned on media bad-spots.
    pub retries: u64,
    /// Tape jobs redirected to a replica copy after exhausting retries.
    pub failovers: u64,
    /// Requests terminally lost (no replica on another tape).
    pub lost: u64,
}

/// [`run_queued`] under media faults: the legacy single-server FCFS loop
/// with per-tape-job retry budgets, replica failover and counted losses.
///
/// This is the *request-granularity* fault model for the legacy path:
/// bad-spot retries inflate a request's response time (capped exponential
/// backoff plus one reposition-and-reread per retry), and a job whose
/// demand exceeds the budget is redirected to replica copies from
/// `alternates` (one level — replica reads are assumed clean here; the
/// concurrent gear in `tapesim-sched` models them fully). Lost requests
/// are skipped, not served. Drive failures and robot jams need drive
/// identities and exchange timelines, which this single-server loop does
/// not model — use `tapesim_sched::run_scheduled_faulty` for those.
///
/// With a zero plan the metrics equal [`run_queued`] bit for bit (the
/// penalty terms are exactly `0.0`).
pub fn run_queued_faulty(
    sim: &mut Simulator,
    workload: &Workload,
    samples: usize,
    arrivals: ArrivalSpec,
    plan: &tapesim_faults::FaultPlan,
    alternates: &std::collections::BTreeMap<tapesim_model::ObjectId, Vec<tapesim_model::ObjectId>>,
) -> (QueueMetrics, QueueFaultStats) {
    let clock = plan.clock();
    let mut stream = ArrivalProcess::new(arrivals);
    let sampler = workload.request_sampler();
    let mut pick_rng = ChaCha12Rng::seed_from_u64(arrivals.seed ^ 0x9A3E);

    let mut metrics = QueueMetrics::default();
    let mut stats = QueueFaultStats::default();
    let mut server_free = 0.0;
    let mut first_arrival = None;
    for _ in 0..samples {
        let clock_t = stream.next_arrival();
        first_arrival.get_or_insert(clock_t);
        let idx = sampler.sample(&mut pick_rng);
        let request = &workload.requests()[idx];

        let placement = sim.placement();
        let cfg = placement.config();
        let spec = &cfg.library.drive;
        let capacity = cfg.library.tape.capacity;
        let budget = clock.max_retries();

        let jobs = crate::catalog::tape_jobs(placement, &request.objects);
        let mut final_objects = Vec::with_capacity(request.objects.len());
        let mut penalty_s = 0.0;
        let mut lost = false;
        for job in &jobs {
            let tape_idx = cfg.tape_index(job.tape);
            let mut granted_total = 0u32;
            let mut extent_retry_s = 0.0;
            let mut fatal = false;
            for e in &job.extents {
                let demand = clock.spot_demand(tape_idx, e.offset, e.end());
                if demand > 0 {
                    let granted = demand.min(budget - granted_total);
                    granted_total += granted;
                    extent_retry_s += granted as f64
                        * (spec.position_time(e.end(), e.offset, capacity)
                            + spec.transfer_time(e.size));
                    if demand > granted {
                        fatal = true;
                    }
                }
            }
            if granted_total > 0 || fatal {
                penalty_s += clock.backoff_secs(granted_total) + extent_retry_s;
                stats.retries += granted_total as u64;
            }
            if !fatal {
                final_objects.extend(job.extents.iter().map(|e| e.object));
                continue;
            }
            // Retries exhausted: redirect every extent to a replica on a
            // different tape, or lose the whole request.
            let mut replicas = Vec::with_capacity(job.extents.len());
            let resolvable = job.extents.iter().all(|e| {
                alternates
                    .get(&e.object)
                    .and_then(|alts| {
                        alts.iter()
                            .copied()
                            .find(|&o| placement.locate(o).tape != job.tape)
                    })
                    .map(|o| replicas.push(o))
                    .is_some()
            });
            if resolvable {
                stats.failovers += 1;
                final_objects.extend(replicas);
            } else {
                lost = true;
                break;
            }
        }
        if lost {
            stats.lost += 1;
            continue;
        }

        let start = clock_t.max(server_free);
        let response = sim.serve(&final_objects).response + penalty_s;
        server_free = start + response;

        metrics.wait.push(start - clock_t);
        metrics.service.push(response);
        metrics.sojourn.push(server_free - clock_t);
        metrics.busy += response;
    }
    metrics.horizon = server_free - first_arrival.unwrap_or(0.0);
    (metrics, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::Bytes;
    use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
    use tapesim_workload::{ObjectSizeSpec, RequestSpec, WorkloadSpec};

    fn setup() -> (Simulator, Workload) {
        let w = WorkloadSpec {
            objects: 2_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(4)),
            requests: RequestSpec {
                count: 50,
                min_objects: 15,
                max_objects: 25,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 31,
        }
        .generate();
        let cfg = paper_table1();
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        (Simulator::with_natural_policy(p, 4), w)
    }

    #[test]
    fn sparse_arrivals_never_wait() {
        let (mut sim, w) = setup();
        // One request a week: the §6 regime.
        let m = run_queued(
            &mut sim,
            &w,
            30,
            ArrivalSpec {
                per_hour: 1.0 / 168.0,
                seed: 1,
            },
        );
        assert_eq!(m.served(), 30);
        assert!(
            m.avg_wait() < 1e-9,
            "wait {} in the sparse regime",
            m.avg_wait()
        );
        assert!((m.avg_sojourn() - m.avg_service()).abs() < 1e-9);
        assert!(m.utilisation() < 0.1);
    }

    #[test]
    fn dense_arrivals_queue_up() {
        let (mut sim, w) = setup();
        // Service takes hundreds of seconds; 30 arrivals/hour ≈ one every
        // two minutes: the queue must build.
        let m = run_queued(
            &mut sim,
            &w,
            30,
            ArrivalSpec {
                per_hour: 30.0,
                seed: 1,
            },
        );
        assert!(m.avg_wait() > m.avg_service(), "no queueing at high load");
        assert!(m.avg_sojourn() > m.avg_wait());
        assert!(m.utilisation() > 0.8);
    }

    #[test]
    fn wait_grows_with_arrival_rate() {
        let rates = [2.0, 6.0, 18.0];
        let mut waits = Vec::new();
        for &r in &rates {
            let (mut sim, w) = setup();
            let m = run_queued(
                &mut sim,
                &w,
                40,
                ArrivalSpec {
                    per_hour: r,
                    seed: 5,
                },
            );
            waits.push(m.avg_wait());
        }
        assert!(
            waits[0] <= waits[1] && waits[1] <= waits[2],
            "waits not monotone in load: {waits:?}"
        );
    }

    #[test]
    fn deterministic() {
        let (mut sim1, w) = setup();
        let (mut sim2, _) = setup();
        let spec = ArrivalSpec {
            per_hour: 6.0,
            seed: 9,
        };
        let a = run_queued(&mut sim1, &w, 25, spec);
        let b = run_queued(&mut sim2, &w, 25, spec);
        assert_eq!(a.avg_sojourn(), b.avg_sojourn());
    }

    /// The observed variant is a pure tap: its metrics equal
    /// [`run_queued`] bit for bit, and its budget closes within 1e-6.
    #[test]
    fn observed_run_matches_plain_and_budget_closes() {
        let (mut plain_sim, w) = setup();
        let (mut obs_sim, _) = setup();
        let spec = ArrivalSpec {
            per_hour: 10.0,
            seed: 4,
        };
        let plain = run_queued(&mut plain_sim, &w, 25, spec);
        let (observed, budget) = run_queued_observed(&mut obs_sim, &w, 25, spec);
        assert_eq!(plain.avg_wait(), observed.avg_wait());
        assert_eq!(plain.avg_service(), observed.avg_service());
        assert_eq!(plain.avg_sojourn(), observed.avg_sojourn());
        assert_eq!(plain.utilisation(), observed.utilisation());
        assert!(
            budget.sum_error() < 1e-6,
            "closure error {:.3e}",
            budget.sum_error()
        );
        assert!(budget.makespan_s > 0.0);
    }

    #[test]
    fn detailed_records_match_aggregates() {
        let (mut sim, w) = setup();
        let spec = ArrivalSpec {
            per_hour: 10.0,
            seed: 4,
        };
        let (m, records) = run_queued_detailed(&mut sim, &w, 25, spec);
        assert_eq!(records.len(), 25);
        let mean =
            |f: fn(&QueueRecord) -> f64| records.iter().map(f).sum::<f64>() / records.len() as f64;
        assert!((mean(QueueRecord::wait) - m.avg_wait()).abs() < 1e-9);
        assert!((mean(|r| r.service) - m.avg_service()).abs() < 1e-9);
        assert!((mean(QueueRecord::sojourn) - m.avg_sojourn()).abs() < 1e-9);
        // FCFS on one server: services never overlap, arrivals in order.
        for pair in records.windows(2) {
            assert!(pair[1].start >= pair[0].finish() - 1e-9);
            assert!(pair[1].arrival > pair[0].arrival);
        }
    }

    #[test]
    fn zero_fault_plan_reproduces_run_queued() {
        use tapesim_faults::FaultPlan;
        let spec = ArrivalSpec {
            per_hour: 6.0,
            seed: 9,
        };
        let (mut a, w) = setup();
        let base = run_queued(&mut a, &w, 25, spec);
        let (mut b, _) = setup();
        let plan = FaultPlan::zero(b.placement().config());
        let (m, stats) = run_queued_faulty(
            &mut b,
            &w,
            25,
            spec,
            &plan,
            &std::collections::BTreeMap::new(),
        );
        assert_eq!(stats, QueueFaultStats::default());
        assert_eq!(m.served(), base.served());
        assert_eq!(m.avg_wait(), base.avg_wait());
        assert_eq!(m.avg_service(), base.avg_service());
        assert_eq!(m.avg_sojourn(), base.avg_sojourn());
        assert_eq!(m.utilisation(), base.utilisation());
    }

    #[test]
    fn media_faults_inflate_service_and_count_retries() {
        use tapesim_faults::{FaultPlan, FaultSpec};
        let spec = ArrivalSpec {
            per_hour: 6.0,
            seed: 9,
        };
        let (mut clean_sim, w) = setup();
        let clean = run_queued(&mut clean_sim, &w, 25, spec);

        let (mut sim, _) = setup();
        let fspec = FaultSpec {
            bad_spots_per_tape: 20.0,
            drive_mtbf_hours: 0.0,
            jams_per_hour: 0.0,
            ..FaultSpec::moderate(3)
        };
        let plan = FaultPlan::generate(&fspec, sim.placement().config());
        assert!(plan.n_spots() > 0);
        let (m, stats) = run_queued_faulty(
            &mut sim,
            &w,
            25,
            spec,
            &plan,
            &std::collections::BTreeMap::new(),
        );
        assert!(stats.retries > 0, "dense spots must cost retries");
        assert_eq!(m.served() + stats.lost, 25, "conservation");
        // Without replicas, exhausted jobs become losses, never panics.
        assert_eq!(stats.failovers, 0);
        if stats.lost == 0 {
            assert!(
                m.avg_service() > clean.avg_service(),
                "retries must inflate service: {} vs {}",
                m.avg_service(),
                clean.avg_service()
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let (mut sim, w) = setup();
        let _ = run_queued(
            &mut sim,
            &w,
            1,
            ArrivalSpec {
                per_hour: 0.0,
                seed: 0,
            },
        );
    }
}
