//! The per-request event-driven service engine.
//!
//! One request is simulated as a discrete-event run on its own clock
//! (requests arrive far apart, so nothing overlaps between requests; mount
//! state and head positions are carried across runs by the caller).
//!
//! Timeline of one tape switch on a drive (paper §6, Table 1 constants):
//!
//! ```text
//! drive: [ rewind ]                     [ exchange ........ ][ seek|xfer … ]
//! robot:            (queue for robot)   [ unload+eject+inject+load ]
//! ```
//!
//! The robot is a FCFS [`Resource`] per library; the *exchange block*
//! (drive unload, cartridge to cell, fetch new cartridge, load/thread)
//! occupies robot and drive together, matching the paper's constant-time
//! robot operation model. The rewind before it only occupies the drive.

use crate::catalog::TapeJob;
use crate::metrics::RequestMetrics;
use crate::policy::SwitchPolicy;
use crate::seek_order::{self, SeekPolicy};
use tapesim_des::{Resource, Scheduler, SimTime, TraceEvent, Tracer, World};
use tapesim_model::tape::Extent;
use tapesim_model::{Bytes, DriveId, SystemConfig, TapeId};
use tapesim_placement::Placement;

/// Persistent drive state carried across requests.
#[derive(Debug, Clone, PartialEq)]
pub struct MountState {
    /// Mounted tape per drive (dense drive index).
    pub mounted: Vec<Option<TapeId>>,
    /// Head position per drive (meaningful when mounted).
    pub head: Vec<Bytes>,
}

impl MountState {
    /// State with the given startup mounts, heads at the load point.
    pub fn new(mounts: Vec<Option<TapeId>>) -> MountState {
        let n = mounts.len();
        MountState {
            mounted: mounts,
            head: vec![Bytes::ZERO; n],
        }
    }

    /// The drive currently holding `tape`, if any.
    pub fn drive_of(&self, tape: TapeId) -> Option<usize> {
        self.mounted.iter().position(|&m| m == Some(tape))
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A tape exchange completed; the drive now holds `jobs[job]`'s tape.
    SwitchDone { drive: usize, job: usize },
    /// A drive finished transferring all extents of its current job.
    DriveDone { drive: usize },
}

struct RequestSim<'a> {
    cfg: &'a SystemConfig,
    placement: &'a Placement,
    policy: &'a SwitchPolicy,
    state: &'a mut MountState,
    robots: Vec<Resource>,
    /// All jobs; `pending` holds indices not yet assigned to a drive.
    jobs: Vec<TapeJob>,
    pending: Vec<Vec<usize>>, // per library, front = next to dispatch
    busy: Vec<bool>,
    /// Job index a drive is streaming or switching for, for trace events.
    current_job: Vec<Option<usize>>,
    // Per-drive accounting for this request.
    seek: Vec<f64>,
    transfer: Vec<f64>,
    completion: Vec<SimTime>,
    outstanding: usize,
    n_switches: u32,
    robot_wait: f64,
    tracer: Tracer,
    /// In-tape service-order planner ([`SeekPolicy::Greedy`] by default).
    seek_policy: SeekPolicy,
    /// Seek-plan scratch reused by [`Self::start_service`] across jobs
    /// instead of allocating per-job order vectors.
    plan_scratch: Vec<Extent>,
}

impl<'a> RequestSim<'a> {
    fn drive_id(&self, idx: usize) -> DriveId {
        let d = self.cfg.library.drives as usize;
        DriveId::new(tapesim_model::LibraryId((idx / d) as u16), (idx % d) as u8)
    }

    /// Starts streaming `job` on `drive` (tape already mounted) and
    /// schedules its completion.
    fn start_service(&mut self, drive: usize, job: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        let spec = &self.cfg.library.drive;
        let capacity = self.cfg.library.tape.capacity;
        // Scratch-backed planning: the exact order `seek_order::plan`
        // yields, without its per-job candidate vectors.
        let mut plan = std::mem::take(&mut self.plan_scratch);
        seek_order::plan_with(
            self.seek_policy,
            self.state.head[drive],
            &self.jobs[job].extents,
            &mut plan,
        );
        let mut pos = self.state.head[drive];
        let mut seek_s = 0.0;
        let mut xfer_s = 0.0;
        for e in &plan {
            seek_s += spec.position_time(pos, e.offset, capacity);
            xfer_s += spec.transfer_time(e.size);
            pos = e.end();
        }
        let plan_len = plan.len();
        plan.clear();
        self.plan_scratch = plan;
        self.state.head[drive] = pos;
        self.seek[drive] += seek_s;
        self.transfer[drive] += xfer_s;
        self.busy[drive] = true;
        self.current_job[drive] = Some(job);
        let finish = now + SimTime::from_secs(seek_s + xfer_s);
        self.tracer.emit(
            now,
            TraceEvent::Transfer {
                drive: self.drive_id(drive).into(),
                tape: self.jobs[job].tape.into(),
                job: job as u32,
                extents: plan_len as u32,
                seek: SimTime::from_secs(seek_s),
                transfer: SimTime::from_secs(xfer_s),
                start: now,
                finish,
            },
        );
        sched.schedule_at(finish, Ev::DriveDone { drive });
    }

    /// Begins a tape exchange bringing `job`'s tape onto `drive`.
    fn begin_switch(&mut self, drive: usize, job: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        let spec = &self.cfg.library.drive;
        let robot = &self.cfg.library.robot;
        let capacity = self.cfg.library.tape.capacity;
        let lib = self.drive_id(drive).library.idx();

        let (rewind_s, exchange_s) = match self.state.mounted[drive] {
            Some(_) => (
                spec.rewind_time(self.state.head[drive], capacity),
                spec.unload_time + robot.exchange_handling_time() + spec.load_time,
            ),
            None => (0.0, robot.inject_handling_time() + spec.load_time),
        };
        // The cartridge leaves the drive; until SwitchDone the drive is in
        // transition (busy) and holds nothing.
        if let Some(old) = self.state.mounted[drive].take() {
            self.tracer.emit(
                now,
                TraceEvent::Unmounted {
                    drive: self.drive_id(drive).into(),
                    tape: old.into(),
                },
            );
        }
        self.state.head[drive] = Bytes::ZERO;
        self.busy[drive] = true;
        self.current_job[drive] = Some(job);

        let rewind_done = now + SimTime::from_secs(rewind_s);
        let grant = self.robots[lib].acquire(rewind_done, SimTime::from_secs(exchange_s));
        self.robot_wait += (grant.start - rewind_done).as_secs();
        self.n_switches += 1;
        self.tracer.emit(
            now,
            TraceEvent::ExchangeBegun {
                drive: self.drive_id(drive).into(),
                tape: self.jobs[job].tape.into(),
                arm: grant.server as u32,
                start: grant.start,
                finish: grant.finish,
            },
        );
        sched.schedule_at(grant.finish, Ev::SwitchDone { drive, job });
    }

    /// Dispatches pending jobs of `lib` onto eligible idle drives.
    fn try_dispatch(&mut self, lib: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        let d = self.cfg.library.drives as usize;
        while !self.pending[lib].is_empty() {
            // Eligible: idle switch drives in this library. The mounted
            // tape of an idle drive is never still needed — needed mounted
            // tapes were set busy at t = 0 and stay busy until served.
            let mut best: Option<(u8, f64, usize)> = None;
            for bay in 0..d {
                let idx = lib * d + bay;
                if self.busy[idx] {
                    continue;
                }
                let id = self.drive_id(idx);
                if !self.policy.is_switch_drive(id, self.cfg) {
                    continue;
                }
                let (kind, p) = self
                    .policy
                    .victim_key(self.state.mounted[idx], self.placement);
                let key = (kind, p, idx);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((_, _, drive)) = best else {
                return; // all eligible drives busy; retry on DriveDone
            };
            let job = self.pending[lib].remove(0);
            self.begin_switch(drive, job, now, sched);
        }
    }
}

impl World for RequestSim<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::SwitchDone { drive, job } => {
                self.state.mounted[drive] = Some(self.jobs[job].tape);
                self.state.head[drive] = Bytes::ZERO;
                self.tracer.emit(
                    now,
                    TraceEvent::Mounted {
                        drive: self.drive_id(drive).into(),
                        tape: self.jobs[job].tape.into(),
                    },
                );
                self.start_service(drive, job, now, sched);
            }
            Ev::DriveDone { drive } => {
                self.busy[drive] = false;
                self.completion[drive] = now;
                self.outstanding -= 1;
                if let Some(job) = self.current_job[drive].take() {
                    self.tracer.emit(
                        now,
                        TraceEvent::JobCompleted {
                            job: job as u32,
                            drive: self.drive_id(drive).into(),
                        },
                    );
                }
                let lib = self.drive_id(drive).library.idx();
                self.try_dispatch(lib, now, sched);
            }
        }
    }
}

/// Serves one request against the placement, mutating `state` (mounts and
/// head positions persist to the next request).
pub fn serve_request(
    cfg: &SystemConfig,
    placement: &Placement,
    policy: &SwitchPolicy,
    state: &mut MountState,
    jobs: Vec<TapeJob>,
) -> RequestMetrics {
    serve_request_traced(cfg, placement, policy, state, jobs, false).0
}

/// Like [`serve_request`], but optionally records a human-readable event
/// timeline (mounts, exchanges, streams, completions) for the request —
/// the `tapesim serve --trace` view.
pub fn serve_request_traced(
    cfg: &SystemConfig,
    placement: &Placement,
    policy: &SwitchPolicy,
    state: &mut MountState,
    jobs: Vec<TapeJob>,
    trace: bool,
) -> (RequestMetrics, Tracer) {
    serve_request_seek(
        cfg,
        placement,
        policy,
        state,
        jobs,
        trace,
        SeekPolicy::Greedy,
    )
}

/// The general engine entry: [`serve_request_traced`] with an explicit
/// in-tape [`SeekPolicy`]. [`SeekPolicy::Greedy`] reproduces the
/// pre-policy engine bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn serve_request_seek(
    cfg: &SystemConfig,
    placement: &Placement,
    policy: &SwitchPolicy,
    state: &mut MountState,
    jobs: Vec<TapeJob>,
    trace: bool,
    seek_policy: SeekPolicy,
) -> (RequestMetrics, Tracer) {
    let n_drives = cfg.total_drives();
    let n_libs = cfg.libraries as usize;
    let bytes: Bytes = jobs.iter().map(|j| j.bytes()).sum();
    let n_tapes = jobs.len() as u32;

    let mut sim = RequestSim {
        cfg,
        placement,
        policy,
        state,
        robots: vec![Resource::new(cfg.library.robot.arms.max(1) as usize); n_libs],
        outstanding: jobs.len(),
        jobs,
        pending: vec![Vec::new(); n_libs],
        busy: vec![false; n_drives],
        current_job: vec![None; n_drives],
        seek: vec![0.0; n_drives],
        transfer: vec![0.0; n_drives],
        completion: vec![SimTime::ZERO; n_drives],
        n_switches: 0,
        robot_wait: 0.0,
        tracer: if trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        },
        seek_policy,
        plan_scratch: Vec::new(),
    };

    let mut sched: Scheduler<Ev> = Scheduler::new();

    // Trace prologue: the initial mount state (carried over from previous
    // requests) and the request's job list, so the audited transcript is
    // self-contained.
    for drive in 0..n_drives {
        if let Some(tape) = sim.state.mounted[drive] {
            sim.tracer.emit(
                SimTime::ZERO,
                TraceEvent::AssumeMounted {
                    drive: sim.drive_id(drive).into(),
                    tape: tape.into(),
                },
            );
        }
    }
    for (job, j) in sim.jobs.iter().enumerate() {
        sim.tracer.emit(
            SimTime::ZERO,
            TraceEvent::JobSubmitted {
                job: job as u32,
                tape: j.tape.into(),
            },
        );
    }

    // t = 0: mounted jobs start streaming; the rest queue per library.
    for job in 0..sim.jobs.len() {
        match sim.state.drive_of(sim.jobs[job].tape) {
            Some(drive) => sim.start_service(drive, job, SimTime::ZERO, &mut sched),
            None => {
                let lib = sim.jobs[job].tape.library.idx();
                sim.pending[lib].push(job);
            }
        }
    }
    for lib in 0..n_libs {
        sim.try_dispatch(lib, SimTime::ZERO, &mut sched);
    }

    let end = sched.run(&mut sim);
    assert_eq!(
        sim.outstanding, 0,
        "engine drained with unserved tapes — no eligible switch drive \
         exists; check the policy/config (m >= 1 guarantees progress)"
    );

    // Last-finishing drive defines the request's seek/transfer (§6).
    let response = end.as_secs();
    let last = (0..n_drives)
        .max_by(|&a, &b| {
            sim.completion[a].cmp(&sim.completion[b]).then(b.cmp(&a)) // deterministic: smaller index wins ties
        })
        .unwrap_or(0);
    let seek = sim.seek[last];
    let transfer = sim.transfer[last];
    let metrics = RequestMetrics {
        response,
        seek,
        transfer,
        switch: (response - seek - transfer).max(0.0),
        bytes,
        n_tapes,
        n_switches: sim.n_switches,
        robot_wait: sim.robot_wait,
        n_events: sched.events_processed(),
    };
    (metrics, sim.tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::tape_jobs;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::{LibraryId, ObjectId};
    use tapesim_placement::PlacementBuilder;
    use tapesim_workload::{ObjectRecord, Request, Workload};

    /// 4 objects of 8 GB: 0,1 on L0:T0; 2 on L0:T1; 3 on L1:T0.
    fn setup() -> (tapesim_model::SystemConfig, Placement, Workload) {
        let cfg = paper_table1();
        let objects: Vec<ObjectRecord> = (0..4)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(8),
            })
            .collect();
        let w = Workload::new(
            objects,
            vec![Request {
                rank: 0,
                probability: 1.0,
                objects: (0..4).map(ObjectId).collect(),
            }],
        );
        let mut b = PlacementBuilder::new(&cfg, &w);
        b.append(TapeId::new(LibraryId(0), 0), ObjectId(0), Bytes::gb(8), 0.5)
            .unwrap();
        b.append(TapeId::new(LibraryId(0), 0), ObjectId(1), Bytes::gb(8), 0.5)
            .unwrap();
        b.append(TapeId::new(LibraryId(0), 1), ObjectId(2), Bytes::gb(8), 0.3)
            .unwrap();
        b.append(TapeId::new(LibraryId(1), 0), ObjectId(3), Bytes::gb(8), 0.2)
            .unwrap();
        (cfg, b.build().unwrap(), w)
    }

    const XFER_8GB: f64 = 100.0; // 8 GB at 80 MB/s

    #[test]
    fn all_mounted_pure_parallel_transfer() {
        let (cfg, p, _w) = setup();
        let policy = SwitchPolicy::LeastPopular;
        let mut state = MountState::new(policy.initial_mounts(&p, &cfg));
        let jobs = tape_jobs(&p, &[ObjectId(0), ObjectId(2), ObjectId(3)]);
        let m = serve_request(&cfg, &p, &policy, &mut state, jobs);
        // All three tapes are among the initial mounts; heads at 0, each
        // object is the first extent on its tape → zero seek, 100 s each in
        // parallel.
        assert!(
            (m.response - XFER_8GB).abs() < 1e-9,
            "response {}",
            m.response
        );
        assert_eq!(m.n_switches, 0);
        assert!((m.switch - 0.0).abs() < 1e-9);
        assert!((m.transfer - XFER_8GB).abs() < 1e-9);
        // Bandwidth: 24 GB / 100 s = 240 MB/s — parallel speedup over one
        // drive's 80 MB/s.
        assert!((m.bandwidth_mbs() - 240.0).abs() < 1e-6);
    }

    #[test]
    fn sequential_extents_on_one_tape() {
        let (cfg, p, _w) = setup();
        let policy = SwitchPolicy::LeastPopular;
        let mut state = MountState::new(policy.initial_mounts(&p, &cfg));
        let jobs = tape_jobs(&p, &[ObjectId(0), ObjectId(1)]);
        let m = serve_request(&cfg, &p, &policy, &mut state, jobs);
        // Contiguous extents read back to back: 200 s, no seek gap.
        assert!((m.response - 2.0 * XFER_8GB).abs() < 1e-9);
        assert!((m.seek - 0.0).abs() < 1e-9);
        // Head persisted at 16 GB.
        let drive = state.drive_of(TapeId::new(LibraryId(0), 0)).unwrap();
        assert_eq!(state.head[drive], Bytes::gb(16));
    }

    #[test]
    fn unmounted_tape_costs_a_switch() {
        let (cfg, p, _w) = setup();
        let policy = SwitchPolicy::LeastPopular;
        // Mount nothing: every drive empty.
        let mut state = MountState::new(vec![None; cfg.total_drives()]);
        let jobs = tape_jobs(&p, &[ObjectId(0)]);
        let m = serve_request(&cfg, &p, &policy, &mut state, jobs);
        // Empty-drive switch: inject (7.6) + load (19) then 100 s transfer.
        let expected = 7.6 + 19.0 + XFER_8GB;
        assert!((m.response - expected).abs() < 1e-9, "got {}", m.response);
        assert_eq!(m.n_switches, 1);
        assert!((m.switch - 26.6).abs() < 1e-9);
    }

    #[test]
    fn occupied_drive_switch_includes_rewind_and_unload() {
        // 1 library × 2 drives; three single-object tapes with
        // probabilities T0 = 0.5, T1 = 0.4, T2 = 0.1.
        let cfg = tapesim_model::SystemConfig::new(
            1,
            tapesim_model::LibrarySpec {
                drives: 2,
                ..tapesim_model::specs::stk_l80_library(
                    tapesim_model::specs::lto3_drive(),
                    tapesim_model::specs::lto3_tape(),
                )
            },
        )
        .unwrap();
        let objects: Vec<ObjectRecord> = (0..3)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(8),
            })
            .collect();
        let w = Workload::new(
            objects,
            vec![Request {
                rank: 0,
                probability: 1.0,
                objects: (0..3).map(ObjectId).collect(),
            }],
        );
        let mut b = PlacementBuilder::new(&cfg, &w);
        for (i, prob) in [(0u32, 0.5), (1, 0.4), (2, 0.1)] {
            b.append(
                TapeId::new(LibraryId(0), i as u16),
                ObjectId(i),
                Bytes::gb(8),
                prob,
            )
            .unwrap();
        }
        let p = b.build().unwrap();
        let policy = SwitchPolicy::LeastPopular;

        // Request 1 occupies both drives with T0 and T2.
        let mut state = MountState::new(vec![None; 2]);
        serve_request(
            &cfg,
            &p,
            &policy,
            &mut state,
            tape_jobs(&p, &[ObjectId(0), ObjectId(2)]),
        );
        assert!(state.mounted.iter().all(|m| m.is_some()));

        // Request 2 needs T1: both drives occupied, the victim is the
        // least popular mounted tape (T2, head at 8 GB).
        let m = serve_request(&cfg, &p, &policy, &mut state, tape_jobs(&p, &[ObjectId(1)]));
        let rewind = 8.0 / 400.0 * 98.0; // 1.96 s
        let exchange = 19.0 + 7.6 + 7.6 + 19.0; // unload+eject+inject+load
        assert!(
            (m.response - (rewind + exchange + XFER_8GB)).abs() < 1e-9,
            "got {}",
            m.response
        );
        // T0 (more popular) survived; T2 was evicted.
        assert!(state.drive_of(TapeId::new(LibraryId(0), 0)).is_some());
        assert!(state.drive_of(TapeId::new(LibraryId(0), 2)).is_none());
        assert!(state.drive_of(TapeId::new(LibraryId(0), 1)).is_some());
    }

    #[test]
    fn one_robot_serialises_two_switches() {
        let (cfg, p, _w) = setup();
        let policy = SwitchPolicy::LeastPopular;
        let mut state = MountState::new(vec![None; cfg.total_drives()]);
        // Objects 0 (L0:T0) and 2 (L0:T1): two switches in the SAME library.
        let jobs = tape_jobs(&p, &[ObjectId(0), ObjectId(2)]);
        let m = serve_request(&cfg, &p, &policy, &mut state, jobs);
        // Robot does two 26.6 s inject+load blocks back to back; the second
        // drive starts its 100 s transfer at 53.2 s.
        let expected = 2.0 * 26.6 + XFER_8GB;
        assert!((m.response - expected).abs() < 1e-9, "got {}", m.response);
        assert_eq!(m.n_switches, 2);
        assert!(m.robot_wait > 0.0, "second switch queued on the robot");
    }

    #[test]
    fn a_second_arm_parallelises_exchanges_within_a_library() {
        let (mut cfg, p, _w) = setup();
        cfg.library.robot.arms = 2;
        let policy = SwitchPolicy::LeastPopular;
        let mut state = MountState::new(vec![None; cfg.total_drives()]);
        // Objects 0 (L0:T0) and 2 (L0:T1): both switches in library 0, but
        // two arms carry them concurrently.
        let jobs = tape_jobs(&p, &[ObjectId(0), ObjectId(2)]);
        let m = serve_request(&cfg, &p, &policy, &mut state, jobs);
        assert!(
            (m.response - (26.6 + XFER_8GB)).abs() < 1e-9,
            "dual-arm response {}",
            m.response
        );
        assert!((m.robot_wait - 0.0).abs() < 1e-9);
    }

    #[test]
    fn robots_of_different_libraries_work_in_parallel() {
        let (cfg, p, _w) = setup();
        let policy = SwitchPolicy::LeastPopular;
        let mut state = MountState::new(vec![None; cfg.total_drives()]);
        // Objects 0 (L0) and 3 (L1): one switch in each library.
        let jobs = tape_jobs(&p, &[ObjectId(0), ObjectId(3)]);
        let m = serve_request(&cfg, &p, &policy, &mut state, jobs);
        assert!(
            (m.response - (26.6 + XFER_8GB)).abs() < 1e-9,
            "got {}",
            m.response
        );
        assert_eq!(m.n_switches, 2);
        assert!((m.robot_wait - 0.0).abs() < 1e-9, "no robot queueing");
    }

    #[test]
    fn decomposition_adds_up() {
        let (cfg, p, _w) = setup();
        let policy = SwitchPolicy::LeastPopular;
        let mut state = MountState::new(vec![None; cfg.total_drives()]);
        let jobs = tape_jobs(&p, &[ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(3)]);
        let m = serve_request(&cfg, &p, &policy, &mut state, jobs);
        assert!((m.switch + m.seek + m.transfer - m.response).abs() < 1e-9);
        assert_eq!(m.n_tapes, 3);
        assert_eq!(m.bytes, Bytes::gb(32));
    }

    #[test]
    fn empty_request() {
        let (cfg, p, _w) = setup();
        let policy = SwitchPolicy::LeastPopular;
        let mut state = MountState::new(policy.initial_mounts(&p, &cfg));
        let m = serve_request(&cfg, &p, &policy, &mut state, vec![]);
        assert_eq!(m.response, 0.0);
        assert_eq!(m.bytes, Bytes::ZERO);
    }
}
