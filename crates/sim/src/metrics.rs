//! Request- and run-level metrics (§6 "Metrics").
//!
//! Per request the paper reports the response time and its decomposition:
//! the **seek** and **transfer** time are those of the drive that finishes
//! the request *last*, and the **switch** time is the residual
//! `response − (seek + transfer)` — it absorbs rewinds, robot handling and
//! robot-queue waiting on the critical path. The **effective data
//! retrieval bandwidth** is `requested bytes / response time`.

use serde::{Deserialize, Serialize};
use tapesim_des::stats::Welford;
use tapesim_model::Bytes;

/// Measurements of one serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestMetrics {
    /// Wall time from submission to the last transferred byte, seconds.
    pub response: f64,
    /// Seek time of the last-finishing drive, seconds.
    pub seek: f64,
    /// Transfer time of the last-finishing drive, seconds.
    pub transfer: f64,
    /// Residual `response − seek − transfer`, seconds.
    pub switch: f64,
    /// Total requested bytes.
    pub bytes: Bytes,
    /// Distinct tapes touched.
    pub n_tapes: u32,
    /// Tape exchanges performed.
    pub n_switches: u32,
    /// Total time switch operations spent queued on robots, seconds.
    pub robot_wait: f64,
    /// DES events the engine processed while serving this request.
    /// Defaults to 0 when deserializing records written before event
    /// accounting existed.
    #[serde(default = "zero_events")]
    pub n_events: u64,
}

fn zero_events() -> u64 {
    0
}

impl RequestMetrics {
    /// Effective data retrieval bandwidth, MB/s (decimal).
    pub fn bandwidth_mbs(&self) -> f64 {
        if self.response <= 0.0 {
            return 0.0;
        }
        self.bytes.get() as f64 / 1e6 / self.response
    }
}

/// Aggregated metrics over a run of sampled requests.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    response: Welford,
    seek: Welford,
    transfer: Welford,
    switch_t: Welford,
    bandwidth: Welford,
    n_switches: Welford,
    total_bytes: u64,
    total_response: f64,
}

impl RunMetrics {
    /// An empty accumulator.
    pub fn new() -> RunMetrics {
        RunMetrics::default()
    }

    /// Folds in one request.
    pub fn push(&mut self, r: &RequestMetrics) {
        self.response.push(r.response);
        self.seek.push(r.seek);
        self.transfer.push(r.transfer);
        self.switch_t.push(r.switch);
        self.bandwidth.push(r.bandwidth_mbs());
        self.n_switches.push(r.n_switches as f64);
        self.total_bytes += r.bytes.get();
        self.total_response += r.response;
    }

    /// Number of requests folded in.
    pub fn count(&self) -> u64 {
        self.response.count()
    }

    /// Average response time, seconds.
    pub fn avg_response(&self) -> f64 {
        self.response.mean()
    }

    /// Average per-request seek time, seconds.
    pub fn avg_seek(&self) -> f64 {
        self.seek.mean()
    }

    /// Average per-request transfer time, seconds.
    pub fn avg_transfer(&self) -> f64 {
        self.transfer.mean()
    }

    /// Average per-request switch time, seconds.
    pub fn avg_switch(&self) -> f64 {
        self.switch_t.mean()
    }

    /// Mean of per-request effective bandwidths, MB/s.
    pub fn avg_bandwidth_mbs(&self) -> f64 {
        self.bandwidth.mean()
    }

    /// Standard deviation of per-request bandwidth, MB/s.
    pub fn bandwidth_stddev(&self) -> f64 {
        self.bandwidth.stddev()
    }

    /// Aggregate bandwidth: all bytes over all response time, MB/s.
    pub fn aggregate_bandwidth_mbs(&self) -> f64 {
        if self.total_response <= 0.0 {
            return 0.0;
        }
        self.total_bytes as f64 / 1e6 / self.total_response
    }

    /// Average number of tape exchanges per request.
    pub fn avg_switches(&self) -> f64 {
        self.n_switches.mean()
    }

    /// Merges another accumulator (for parallel sweeps).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.response.merge(&other.response);
        self.seek.merge(&other.seek);
        self.transfer.merge(&other.transfer);
        self.switch_t.merge(&other.switch_t);
        self.bandwidth.merge(&other.bandwidth);
        self.n_switches.merge(&other.n_switches);
        self.total_bytes += other.total_bytes;
        self.total_response += other.total_response;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(response: f64, seek: f64, transfer: f64, gb: u64) -> RequestMetrics {
        RequestMetrics {
            response,
            seek,
            transfer,
            switch: response - seek - transfer,
            bytes: Bytes::gb(gb),
            n_tapes: 3,
            n_switches: 2,
            robot_wait: 0.0,
            n_events: 7,
        }
    }

    #[test]
    fn request_bandwidth() {
        let r = req(1000.0, 10.0, 900.0, 100);
        // 100 GB over 1000 s = 100 MB/s.
        assert!((r.bandwidth_mbs() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_response_is_safe() {
        let r = RequestMetrics {
            response: 0.0,
            seek: 0.0,
            transfer: 0.0,
            switch: 0.0,
            bytes: Bytes::ZERO,
            n_tapes: 0,
            n_switches: 0,
            robot_wait: 0.0,
            n_events: 0,
        };
        assert_eq!(r.bandwidth_mbs(), 0.0);
    }

    #[test]
    fn run_aggregation() {
        let mut run = RunMetrics::new();
        run.push(&req(1000.0, 10.0, 900.0, 100)); // 100 MB/s
        run.push(&req(500.0, 20.0, 400.0, 100)); // 200 MB/s
        assert_eq!(run.count(), 2);
        assert!((run.avg_response() - 750.0).abs() < 1e-9);
        assert!((run.avg_seek() - 15.0).abs() < 1e-9);
        assert!((run.avg_bandwidth_mbs() - 150.0).abs() < 1e-9);
        // Aggregate: 200 GB over 1500 s = 133.3 MB/s.
        assert!((run.aggregate_bandwidth_mbs() - 200e9 / 1e6 / 1500.0).abs() < 1e-9);
        // Decomposition adds up by construction.
        assert!(
            (run.avg_switch() + run.avg_seek() + run.avg_transfer() - run.avg_response()).abs()
                < 1e-9
        );
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = RunMetrics::new();
        let mut b = RunMetrics::new();
        let mut whole = RunMetrics::new();
        for i in 0..10 {
            let r = req(1000.0 + i as f64, 10.0, 900.0, 100);
            if i % 2 == 0 {
                a.push(&r);
            } else {
                b.push(&r);
            }
            whole.push(&r);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.avg_response() - whole.avg_response()).abs() < 1e-9);
        assert!((a.aggregate_bandwidth_mbs() - whole.aggregate_bandwidth_mbs()).abs() < 1e-9);
    }
}
