//! Seek-optimised service order of objects on one tape.
//!
//! "The objects retrieving order within a tape is optimized to reduce the
//! data seek time based on object location information retrieved from the
//! indexing database" (§6). On a linear medium where reading an extent
//! carries the head from its start to its end, the total seek of a service
//! order is the head travel *between* extents.
//!
//! Finding the optimum is the Linear Tape Scheduling Problem (LTSP —
//! Honoré, Simon & Suter; Cardonha & Villa Real): reads displace the head
//! forward, so it is not plain sortedness. The engines pick a planner via
//! [`SeekPolicy`] and call [`plan_with`]; three planners exist, forming the
//! lattice `exact ≤ greedy` and `exact ≤ approx ≤ 2·exact`:
//!
//! * [`SeekPolicy::Greedy`] — [`plan`] / [`plan_into`], the default:
//!   evaluates a fixed family of five sweep-shaped candidate orders
//!   (ascending; above-then-below ascending/descending; nearest-below hop;
//!   below-descending first). Cheap, and usually within a few percent of
//!   optimal — but a *measured* regime exists where every sweep loses
//!   (see the `greedy_loses_to_the_dp_on_the_pinned_regime` test: a long
//!   extent just below the head whose read carries the head upward for
//!   free defeats all five shapes by >30%).
//! * [`SeekPolicy::ExactDp`] — [`exact_into`], a polynomial dynamic
//!   program in the spirit of the exact LTSP algorithms. The key
//!   asymmetry: a read traverses its extent's span *upward for free*
//!   (seek cost counts only inter-extent travel), while any downward
//!   crossing pays full distance. So an optimal head path is a sequence
//!   of descending "dips" ending in one final ascent — equivalently,
//!   some optimal order **partitions the position-sorted extents into
//!   consecutive runs, serves the runs top-down, and serves each run in
//!   ascending order** (one upward pass per run picks up every extent in
//!   it en route). The DP searches all such partitions: state `(r, j)` =
//!   least remaining travel when the lowest `r` extents are unserved and
//!   the head sits at the end of extent `j`; a transition peels the next
//!   run `k..r` off the top of the unserved prefix. `O(n²)` states,
//!   `O(n)` per transition, choice tables reconstruct the order. This is
//!   provably optimal for **pairwise-disjoint** extents — the engine
//!   invariant; placement never overlaps extents on one tape — and is
//!   differentially pinned to the permutation oracle in tests. (With
//!   overlap the free-ride argument breaks, so on overlapping input
//!   `exact_into` detects the violated precondition and falls back to
//!   the greedy sweep.)
//! * [`SeekPolicy::Approx`] — [`approx_into`], a guaranteed-ratio sweep
//!   for large batches: the cheaper of the plain ascending sweep and
//!   below-descending-then-above-ascending. For disjoint extents the
//!   ascending sweep alone costs `|h − m| + G` (head `h`, lowest offset
//!   `m`, `G` = the sum of inter-extent gaps), while every order pays at
//!   least `G` (each gap is crossed by seeks, never by reads) and at
//!   least `(h − m)⁺` (the head must reach `m`) — so the sweep is at most
//!   `2·OPT`, and *equal* to OPT when the head starts below every extent.
//! * [`SeekPolicy::Auto`] — exact DP up to [`AUTO_EXACT_MAX`] extents,
//!   the ratio-bounded sweep beyond.
//!
//! The brute-force permutation oracle ([`oracle::optimal_order`]) is the
//! differential wall the DP is tested against: compiled only under
//! `cfg(test)` or the `oracle` feature, it pins `ExactDp` to the true
//! optimum on every randomized disjoint case.

use tapesim_model::tape::Extent;
use tapesim_model::Bytes;

/// Above this many extents, [`SeekPolicy::Auto`] stops paying the DP's
/// `O(n²)` table and switches to the ratio-bounded sweep.
pub const AUTO_EXACT_MAX: usize = 24;

/// Which planner orders the extents of one tape job.
///
/// Per-tape-local: the choice never changes which tapes are mounted or
/// how batches form, only the in-tape service order — so parallel
/// partition eligibility and cross-library behaviour are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeekPolicy {
    /// The five-candidate sweep ([`plan_into`]); bit-identical to every
    /// run recorded before seek policies existed. The default.
    #[default]
    Greedy,
    /// The interval DP ([`exact_into`]): optimal for disjoint extents,
    /// greedy fallback on overlapping input.
    ExactDp,
    /// The two-candidate sweep ([`approx_into`]) with a proven factor-2
    /// bound on disjoint extents.
    Approx,
    /// [`SeekPolicy::ExactDp`] for batches of at most [`AUTO_EXACT_MAX`]
    /// extents, [`SeekPolicy::Approx`] beyond.
    Auto,
}

impl SeekPolicy {
    /// Parses a CLI/env spelling: `greedy`, `exact`, `approx` or `auto`.
    pub fn parse(text: &str) -> Option<SeekPolicy> {
        match text.trim().to_ascii_lowercase().as_str() {
            "greedy" => Some(SeekPolicy::Greedy),
            "exact" | "exact-dp" | "exactdp" => Some(SeekPolicy::ExactDp),
            "approx" => Some(SeekPolicy::Approx),
            "auto" => Some(SeekPolicy::Auto),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            SeekPolicy::Greedy => "greedy",
            SeekPolicy::ExactDp => "exact",
            SeekPolicy::Approx => "approx",
            SeekPolicy::Auto => "auto",
        }
    }

    /// The policy named by `TAPESIM_SEEK`, or `Greedy` when the variable
    /// is unset or unparseable. Consulted by the CLI when no
    /// `--seek-policy` flag is given; the engines themselves never read
    /// the environment.
    pub fn from_env() -> SeekPolicy {
        std::env::var("TAPESIM_SEEK")
            .ok()
            .and_then(|v| SeekPolicy::parse(&v))
            .unwrap_or_default()
    }
}

/// Total inter-extent head travel (bytes) of serving `order` from `head`.
pub fn seek_distance(head: Bytes, order: &[Extent]) -> u64 {
    let mut pos = head;
    let mut travel = 0u64;
    for e in order {
        travel += pos.distance(e.offset).get();
        pos = e.end();
    }
    travel
}

/// Plans the service order under `policy`, writing it into `out`
/// (cleared first). The policy entry point the engines call; with
/// [`SeekPolicy::Greedy`] this is exactly [`plan_into`], preserving every
/// pre-policy run bit for bit.
pub fn plan_with(policy: SeekPolicy, head: Bytes, extents: &[Extent], out: &mut Vec<Extent>) {
    match policy {
        SeekPolicy::Greedy => plan_into(head, extents, out),
        SeekPolicy::ExactDp => exact_into(head, extents, out),
        SeekPolicy::Approx => approx_into(head, extents, out),
        SeekPolicy::Auto => {
            if extents.len() <= AUTO_EXACT_MAX {
                exact_into(head, extents, out);
            } else {
                approx_into(head, extents, out);
            }
        }
    }
}

/// The cheapest of the sweep-shaped candidate orders (see module docs).
/// Extents must all lie on the same tape; the result contains each exactly
/// once.
pub fn plan(head: Bytes, extents: &[Extent]) -> Vec<Extent> {
    if extents.len() <= 1 {
        return extents.to_vec();
    }
    let mut asc: Vec<Extent> = extents.to_vec();
    asc.sort_by_key(|e| e.offset);
    let (below, above): (Vec<Extent>, Vec<Extent>) = asc.iter().partition(|e| e.offset < head);
    let below_desc: Vec<Extent> = below.iter().rev().copied().collect();

    let mut candidates: Vec<Vec<Extent>> = Vec::with_capacity(5);
    // 1. Plain ascending sweep.
    candidates.push(asc.clone());
    // 2. Above ascending, then below ascending.
    let mut c = above.clone();
    c.extend(below.iter().copied());
    candidates.push(c);
    // 3. Above ascending, then below descending.
    let mut c = above.clone();
    c.extend(below_desc.iter().copied());
    candidates.push(c);
    // 5. Short backward hop to the nearest below-extent, then a plain
    //    ascending sweep of the rest. Wins when one extent sits just
    //    behind the head and the others are far below: the hop costs
    //    little and the sweep restarts from the bottom.
    if let Some(&nearest_below) = below.last() {
        let mut c = vec![nearest_below];
        c.extend(below[..below.len() - 1].iter().copied());
        c.extend(above.iter().copied());
        candidates.push(c);
    }
    // 4. Below descending, then above ascending.
    let mut c = below_desc;
    c.extend(above);
    candidates.push(c);

    candidates
        .into_iter()
        .map(|c| (seek_distance(head, &c), c))
        // First minimum on ties, matching `min_by_key`; the candidate list
        // is never empty, so the fallback is unreachable.
        .reduce(|best, next| if next.0 < best.0 { next } else { best })
        .map(|(_, c)| c)
        .unwrap_or_default()
}

/// Allocation-free [`plan`]: writes the chosen order into `out` (cleared
/// first), reusing its capacity across calls. Produces exactly the order
/// [`plan`] returns — same candidate family, same evaluation order, same
/// first-minimum tie-break — without materialising any candidate: each
/// sweep shape is walked as an index sequence over one sorted buffer and
/// only the winner is laid out, by in-place reverse/rotate.
///
/// The hot engines call this (via [`plan_with`] under the default
/// [`SeekPolicy::Greedy`]) with a per-run scratch vector; [`plan`] stays
/// as the simple allocating form for one-shot callers.
pub fn plan_into(head: Bytes, extents: &[Extent], out: &mut Vec<Extent>) {
    out.clear();
    out.extend_from_slice(extents);
    if extents.len() <= 1 {
        return;
    }
    out.sort_by_key(|e| e.offset);
    // `out` is ascending; the first `k` extents lie below the head.
    let k = out.partition_point(|e| e.offset < head);
    let n = out.len();
    if k == 0 {
        // Nothing below the head: every sweep shape degenerates to the
        // plain ascending order `out` already holds, and `plan`'s
        // first-minimum tie-break picks exactly that candidate.
        return;
    }

    let dist = |order: &mut dyn Iterator<Item = usize>| -> u64 {
        let mut pos = head;
        let mut travel = 0u64;
        for i in order {
            let e = &out[i];
            travel += pos.distance(e.offset).get();
            pos = e.end();
        }
        travel
    };
    // The same candidates `plan` builds, in the same evaluation order:
    // ascending; above-then-below; above-then-below-descending;
    // nearest-below hop (only when a below part exists); below-descending
    // first. Strict `<` keeps the first minimum on ties, like `plan`.
    let mut best_shape = 0usize;
    let mut best_travel = dist(&mut (0..n));
    let mut consider = |shape: usize, travel: u64| {
        if travel < best_travel {
            best_travel = travel;
            best_shape = shape;
        }
    };
    consider(1, dist(&mut (k..n).chain(0..k)));
    consider(2, dist(&mut (k..n).chain((0..k).rev())));
    if k > 0 {
        consider(
            3,
            dist(&mut std::iter::once(k - 1).chain(0..k - 1).chain(k..n)),
        );
    }
    consider(4, dist(&mut (0..k).rev().chain(k..n)));

    match best_shape {
        0 => {}
        1 => out.rotate_left(k),
        2 => {
            out[..k].reverse();
            out.rotate_left(k);
        }
        3 => out[..k].rotate_right(1),
        _ => out[..k].reverse(),
    }
}

/// An unreached DP state / unset choice.
const UNREACHED: u64 = u64::MAX;
const NO_CHOICE: usize = usize::MAX;

/// The exact partition DP (module docs): writes a seek-minimal order into
/// `out` (cleared first). Optimal whenever the extents are pairwise
/// disjoint — the placement invariant on one tape. On overlapping input
/// the free-ride structure can fail, so the precondition is checked and
/// the call falls back to the greedy sweep ([`plan_into`]), keeping the
/// lattice `exact ≤ greedy` unconditionally true.
pub fn exact_into(head: Bytes, extents: &[Extent], out: &mut Vec<Extent>) {
    out.clear();
    out.extend_from_slice(extents);
    let n = out.len();
    if n <= 1 {
        return;
    }
    // Position order; the size tiebreak parks zero-length extents before
    // any extent spanning past their offset, so touching layouts
    // (`prev.end() == next.offset`) stay within the disjoint precondition.
    out.sort_by_key(|e| (e.offset, e.size));
    let disjoint = out.windows(2).all(|pair| match pair {
        [a, b] => a.end() <= b.offset,
        _ => true,
    });
    if !disjoint {
        plan_into(head, extents, out);
        return;
    }

    let starts: Vec<u64> = out.iter().map(|e| e.offset.get()).collect();
    let ends: Vec<u64> = out.iter().map(|e| e.end().get()).collect();
    let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
    // gap_sum[i] = Σ_{m<i} (starts[m+1] − ends[m]): prefix sums of the
    // inter-extent gaps, so an ascending pass over the run `k..=i` pays
    // `gap_sum[i] − gap_sum[k]` beyond its first seek. Disjointness makes
    // every term non-negative.
    let mut gap_sum: Vec<u64> = Vec::with_capacity(n);
    let mut acc = 0u64;
    for i in 0..n {
        if i > 0 {
            acc += at(&starts, i).saturating_sub(at(&ends, i - 1));
        }
        gap_sum.push(acc);
    }
    let gaps = |k: usize, i: usize| at(&gap_sum, i).saturating_sub(at(&gap_sum, k));

    // State `(r, j)`: the lowest `r` extents are still unserved and the
    // head sits at `ends[j]` (`j ≥ r`: everything at or above the head's
    // extent is already served). A transition peels the next run
    // `k..r` off the top of the unserved prefix: descend to `starts[k]`,
    // ascend through the whole run, leaving state `(k, r − 1)`.
    let state = |r: usize, j: usize| r * n + j;
    let mut cost = vec![UNREACHED; n * n];
    let mut choice = vec![NO_CHOICE; n * n];
    // `cost[(0, j)]` is 0 (nothing left). Fill `r` ascending: `(r, j)`
    // depends only on `(k, r − 1)` with `k < r`. Smallest `k` wins ties
    // (first minimum under strict `<`): prefer the longest run — fewest
    // direction changes — deterministically.
    for r in 0..n {
        for j in r..n {
            let mut best = if r == 0 { 0 } else { UNREACHED };
            let mut pick = NO_CHOICE;
            for k in 0..r {
                let rest = cost.get(state(k, r - 1)).copied().unwrap_or(UNREACHED);
                if rest == UNREACHED {
                    continue;
                }
                let descend = at(&ends, j).abs_diff(at(&starts, k));
                let run = descend + gaps(k, r - 1) + rest;
                if run < best {
                    best = run;
                    pick = k;
                }
            }
            if let (Some(slot), Some(ch)) = (cost.get_mut(state(r, j)), choice.get_mut(state(r, j)))
            {
                *slot = best;
                *ch = pick;
            }
        }
    }

    // The first run `k..n` starts from the real head position instead of
    // a served extent's end; same tie-break.
    let mut best = UNREACHED;
    let mut first = NO_CHOICE;
    for k in 0..n {
        let rest = cost.get(state(k, n - 1)).copied().unwrap_or(UNREACHED);
        if rest == UNREACHED {
            continue;
        }
        let seek = head.get().abs_diff(at(&starts, k));
        let total = seek + gaps(k, n - 1) + rest;
        if total < best {
            best = total;
            first = k;
        }
    }

    // Replay the chosen runs top-down, each run ascending.
    let mut order: Vec<Extent> = Vec::with_capacity(n);
    let mut r = n;
    let mut k = first;
    while k != NO_CHOICE && r > 0 {
        order.extend(out.get(k..r).into_iter().flatten().copied());
        let next_r = k;
        k = if next_r == 0 {
            NO_CHOICE
        } else {
            choice
                .get(state(next_r, r - 1))
                .copied()
                .unwrap_or(NO_CHOICE)
        };
        r = next_r;
    }
    if order.len() == n {
        out.clear();
        out.extend_from_slice(&order);
    }
}

/// The ratio-bounded sweep (module docs): the cheaper of the plain
/// ascending order and below-descending-then-above-ascending, written
/// into `out` (cleared first). For pairwise-disjoint extents the result
/// is at most twice the optimum — and exactly optimal when the head
/// starts at or below the lowest extent.
pub fn approx_into(head: Bytes, extents: &[Extent], out: &mut Vec<Extent>) {
    out.clear();
    out.extend_from_slice(extents);
    let n = out.len();
    if n <= 1 {
        return;
    }
    out.sort_by_key(|e| e.offset);
    let k = out.partition_point(|e| e.offset < head);
    if k == 0 {
        // Head below everything: the ascending sweep is optimal (the
        // `|h − m| + G` cost meets the lower bound with equality).
        return;
    }
    let dist = |order: &mut dyn Iterator<Item = usize>| -> u64 {
        let mut pos = head;
        let mut travel = 0u64;
        for e in order.filter_map(|i| out.get(i)) {
            travel += pos.distance(e.offset).get();
            pos = e.end();
        }
        travel
    };
    let asc = dist(&mut (0..n));
    let down_up = dist(&mut (0..k).rev().chain(k..n));
    // Strict `<`: the ascending shape wins ties, deterministically.
    if down_up < asc {
        out[..k].reverse();
    }
}

/// The brute-force LTSP oracle: exhaustive permutation search, `O(n!)`.
///
/// Sealed off from production builds — compiled only for tests and under
/// the explicit `oracle` feature (the CI differential leg) — so no engine
/// path can ever reach a factorial search. Its sole purpose is the
/// differential wall: every planner is measured against the true optimum.
#[cfg(any(test, feature = "oracle"))]
pub mod oracle {
    use super::{seek_distance, Bytes, Extent};

    /// Exhaustive optimum over all permutations of at most 9 extents.
    pub fn optimal_order(head: Bytes, extents: &[Extent]) -> Vec<Extent> {
        assert!(extents.len() <= 9, "exhaustive search capped at 9 extents");
        // Seed with the identity order so `best` always holds a permutation.
        let mut best = (seek_distance(head, extents), extents.to_vec());
        let mut current = extents.to_vec();
        permute(&mut current, 0, &mut |perm| {
            let d = seek_distance(head, perm);
            if d < best.0 {
                best = (d, perm.to_vec());
            }
        });
        best.1
    }

    fn permute<F: FnMut(&[Extent])>(items: &mut [Extent], k: usize, visit: &mut F) {
        if k == items.len() {
            visit(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, visit);
            items.swap(k, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::optimal_order;
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;
    use tapesim_model::ObjectId;

    fn ext(id: u32, offset_gb: u64, size_gb: u64) -> Extent {
        Extent {
            object: ObjectId(id),
            offset: Bytes::gb(offset_gb),
            size: Bytes::gb(size_gb),
        }
    }

    /// A random pairwise-disjoint extent set (zero-length extents and
    /// touching boundaries allowed) plus a head position, from raw gap
    /// and size draws.
    fn disjoint_case(gaps: &[(u64, u64)], head_frac: u64) -> (Bytes, Vec<Extent>) {
        let mut extents = Vec::new();
        let mut cursor = 0u64;
        for (i, &(gap, size)) in gaps.iter().enumerate() {
            cursor += gap % 64;
            extents.push(ext(i as u32, cursor, size % 32));
            cursor += size % 32;
        }
        let head = Bytes::gb(head_frac % (cursor + 1));
        (head, extents)
    }

    fn cost(policy: SeekPolicy, head: Bytes, extents: &[Extent]) -> u64 {
        let mut out = Vec::new();
        plan_with(policy, head, extents, &mut out);
        seek_distance(head, &out)
    }

    #[test]
    fn forward_sweep_when_head_below_all() {
        let extents = [ext(0, 10, 1), ext(1, 5, 1), ext(2, 20, 1)];
        let order = plan(Bytes::ZERO, &extents);
        let ids: Vec<u32> = order.iter().map(|e| e.object.0).collect();
        assert_eq!(ids, vec![1, 0, 2]);
        // Travel: 0→5, 6→10, 11→20 = 5+4+9.
        assert_eq!(seek_distance(Bytes::ZERO, &order), Bytes::gb(18).get());
    }

    #[test]
    fn nearest_first_when_all_below_and_sparse() {
        // Head at 200 GB, sparse extents below: grab on the way down.
        let extents = [ext(0, 10, 2), ext(1, 60, 5)];
        let order = plan(Bytes::gb(200), &extents);
        assert_eq!(order[0].object, ObjectId(1), "highest below-extent first");
        // 200→60 (140) + 65→10 (55) = 195 GB of travel.
        assert_eq!(seek_distance(Bytes::gb(200), &order), Bytes::gb(195).get());
    }

    #[test]
    fn above_first_when_head_in_the_middle() {
        let extents = [ext(0, 101, 2), ext(1, 2, 1)];
        let order = plan(Bytes::gb(100), &extents);
        assert_eq!(
            order[0].object,
            ObjectId(0),
            "serve the near-above extent first"
        );
    }

    #[test]
    fn matches_exhaustive_on_canonical_cases() {
        let cases: Vec<(u64, Vec<Extent>)> = vec![
            (0, vec![ext(0, 10, 2), ext(1, 30, 5), ext(2, 1, 1)]),
            (
                50,
                vec![ext(0, 10, 2), ext(1, 60, 5), ext(2, 45, 3), ext(3, 90, 1)],
            ),
            (200, vec![ext(0, 10, 2), ext(1, 60, 5)]),
            (
                35,
                vec![ext(0, 30, 4), ext(1, 36, 4), ext(2, 20, 4), ext(3, 50, 4)],
            ),
        ];
        for (head_gb, extents) in cases {
            let head = Bytes::gb(head_gb);
            let ours = seek_distance(head, &plan(head, &extents));
            let best = seek_distance(head, &optimal_order(head, &extents));
            assert_eq!(ours, best, "head={head_gb} GB, extents={extents:?}");
        }
    }

    #[test]
    fn within_a_few_percent_of_optimal_on_random_cases() {
        let mut rng = ChaCha12Rng::seed_from_u64(21);
        for case in 0..200 {
            let n = rng.gen_range(2..=6);
            let mut extents = Vec::new();
            let mut cursor = 0u64;
            for i in 0..n {
                cursor += rng.gen_range(0..60);
                let size = rng.gen_range(1..=16);
                extents.push(ext(i, cursor, size));
                cursor += size;
            }
            let subset: Vec<Extent> = extents
                .iter()
                .filter(|_| rng.gen_bool(0.7))
                .copied()
                .collect();
            if subset.is_empty() {
                continue;
            }
            let head = Bytes::gb(rng.gen_range(0..=cursor));
            let ours = seek_distance(head, &plan(head, &subset));
            let best = seek_distance(head, &optimal_order(head, &subset));
            assert!(
                ours as f64 <= best as f64 * 1.10 + 1.0,
                "case {case}: ours {ours} vs optimal {best} (head {head:?}, {subset:?})"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(plan(Bytes::ZERO, &[]).is_empty());
        let one = [ext(0, 7, 1)];
        assert_eq!(plan(Bytes::gb(50), &one), one.to_vec());
        for policy in [
            SeekPolicy::Greedy,
            SeekPolicy::ExactDp,
            SeekPolicy::Approx,
            SeekPolicy::Auto,
        ] {
            let mut out = vec![ext(9, 9, 9)];
            plan_with(policy, Bytes::ZERO, &[], &mut out);
            assert!(out.is_empty(), "{policy:?}");
            plan_with(policy, Bytes::gb(50), &one, &mut out);
            assert_eq!(out, one.to_vec(), "{policy:?}");
        }
    }

    /// The scratch-backed planner must return exactly what the allocating
    /// one returns — order, not just cost — across random heads, extent
    /// layouts (including ties on offset) and a reused scratch buffer, so
    /// the hot engines can swap it in without any behavioural drift.
    #[test]
    fn plan_into_is_order_identical_to_plan() {
        let mut rng = ChaCha12Rng::seed_from_u64(77);
        let mut scratch = Vec::new();
        for case in 0..500 {
            let n = rng.gen_range(0..=7);
            let mut extents = Vec::new();
            for i in 0..n {
                // Coarse offsets make equal-offset ties common, exercising
                // the stable sort and first-minimum tie-breaks.
                let offset = rng.gen_range(0..12) * 25;
                let size = rng.gen_range(1..=20);
                extents.push(ext(i, offset, size));
            }
            let head = Bytes::gb(rng.gen_range(0..=400));
            let expected = plan(head, &extents);
            plan_into(head, &extents, &mut scratch);
            assert_eq!(
                scratch, expected,
                "case {case}: head {head:?}, extents {extents:?}"
            );
        }
    }

    /// `plan_with(Greedy, ..)` must be the default planner verbatim —
    /// order-identical, not just cost-identical — so threading the policy
    /// through the engines cannot move a single golden bit.
    #[test]
    fn plan_with_greedy_is_order_identical_to_plan_into() {
        let mut rng = ChaCha12Rng::seed_from_u64(41);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..300 {
            let n = rng.gen_range(0..=8);
            let extents: Vec<Extent> = (0..n)
                .map(|i| ext(i, rng.gen_range(0..15) * 20, rng.gen_range(0..=12)))
                .collect();
            let head = Bytes::gb(rng.gen_range(0..=350));
            plan_into(head, &extents, &mut a);
            plan_with(SeekPolicy::Greedy, head, &extents, &mut b);
            assert_eq!(a, b, "head {head:?}, extents {extents:?}");
        }
    }

    #[test]
    fn result_is_a_permutation() {
        let extents: Vec<Extent> = (0..6)
            .map(|i| ext(i, 13 * (i as u64 + 1) % 97, 2))
            .collect();
        let order = plan(Bytes::gb(40), &extents);
        assert_eq!(order.len(), extents.len());
        let mut ids: Vec<u32> = order.iter().map(|e| e.object.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    /// The committed adversarial regime: a long extent starting just
    /// below the head. Reading it carries the head upward for free, so
    /// the optimal order serves it first, grabs the adjacent above-extent
    /// and only then descends — a shape none of the five sweeps can
    /// express. Every candidate's cost is pinned, and the measured gap
    /// turns the old module-doc claim "never far from optimal" into a
    /// number: greedy pays 231 GB of travel against the DP's 175 GB,
    /// a 32% regression.
    #[test]
    fn greedy_loses_to_the_dp_on_the_pinned_regime() {
        let head = Bytes::gb(180);
        let extents = [
            ext(0, 56, 10),
            ext(1, 120, 2),
            ext(2, 137, 5),
            ext(3, 179, 29),
            ext(4, 210, 11),
        ];
        // Each sweep candidate, costed by hand (and re-derived here):
        // ascending 232, above+below-asc 301, above+below-desc 231,
        // nearest-below hop 290, below-desc+above-asc 304.
        let greedy = cost(SeekPolicy::Greedy, head, &extents);
        assert_eq!(greedy, Bytes::gb(231).get(), "five-candidate minimum");
        let exact = cost(SeekPolicy::ExactDp, head, &extents);
        assert_eq!(exact, Bytes::gb(175).get(), "DP optimum");
        let oracle_best = seek_distance(head, &optimal_order(head, &extents));
        assert_eq!(exact, oracle_best, "the DP found the true optimum");
        // The pinned gap: 56 GB of extra travel, a >1.3x ratio.
        assert_eq!(greedy - exact, Bytes::gb(56).get());
        assert!(greedy as f64 > 1.3 * exact as f64);
        // The optimal order itself: serve the long just-below extent
        // first (its read ends above the head), hop to the adjacent
        // above-extent, then descend through the rest.
        let mut order = Vec::new();
        exact_into(head, &extents, &mut order);
        let ids: Vec<u32> = order.iter().map(|e| e.object.0).collect();
        assert_eq!(ids, vec![3, 4, 2, 1, 0]);
    }

    /// Differential wall: the DP must equal the brute-force permutation
    /// oracle on every randomized disjoint case (the acceptance
    /// criterion), across heads, duplicate boundaries and zero-length
    /// extents.
    #[test]
    fn exact_dp_matches_the_oracle_on_random_disjoint_cases() {
        let mut rng = ChaCha12Rng::seed_from_u64(91);
        let mut out = Vec::new();
        for case in 0..400 {
            let n = rng.gen_range(1..=if case % 10 == 0 { 9 } else { 7 });
            let mut extents = Vec::new();
            let mut cursor = 0u64;
            for i in 0..n {
                cursor += rng.gen_range(0..48);
                // Zero-length extents at touching boundaries included.
                let size = rng.gen_range(0..=24);
                extents.push(ext(i, cursor, size));
                cursor += size;
            }
            let head = Bytes::gb(rng.gen_range(0..=cursor + 20));
            exact_into(head, &extents, &mut out);
            let ours = seek_distance(head, &out);
            let best = seek_distance(head, &optimal_order(head, &extents));
            assert_eq!(
                ours, best,
                "case {case}: DP {ours} vs oracle {best} (head {head:?}, {extents:?})"
            );
        }
    }

    /// On overlapping input — outside the DP's exactness precondition —
    /// `exact_into` must detect the violation and produce exactly the
    /// greedy order, keeping `exact ≤ greedy` unconditional.
    #[test]
    fn exact_dp_falls_back_to_greedy_on_overlap() {
        let cases = [
            // One extent strictly containing another's start.
            (60, vec![ext(0, 0, 1), ext(1, 50, 950), ext(2, 100, 1)]),
            // A zero-length extent strictly inside another's span.
            (10, vec![ext(0, 5, 40), ext(1, 20, 0), ext(2, 60, 3)]),
        ];
        let mut exact = Vec::new();
        let mut greedy = Vec::new();
        for (head_gb, extents) in cases {
            let head = Bytes::gb(head_gb);
            exact_into(head, &extents, &mut exact);
            plan_into(head, &extents, &mut greedy);
            assert_eq!(exact, greedy, "head {head:?}, extents {extents:?}");
        }
    }

    proptest! {
        /// `exact ≤ greedy` at every size — disjoint (DP regime) or not
        /// (fallback regime) — plus oracle equality when small enough.
        #[test]
        fn exact_never_exceeds_greedy(
            gaps in proptest::collection::vec((0u64..64, 0u64..32), 0..24),
            head_frac in 0u64..10_000,
        ) {
            let (head, extents) = disjoint_case(&gaps, head_frac);
            let exact = cost(SeekPolicy::ExactDp, head, &extents);
            let greedy = cost(SeekPolicy::Greedy, head, &extents);
            prop_assert!(
                exact <= greedy,
                "exact {exact} > greedy {greedy} (head {head:?}, {extents:?})"
            );
            if extents.len() <= 7 {
                let best = seek_distance(head, &optimal_order(head, &extents));
                prop_assert_eq!(exact, best, "DP missed the optimum");
            }
        }

        /// The approximation lattice on disjoint extents:
        /// `exact ≤ approx ≤ 2·exact`, with equality when the head starts
        /// below every extent.
        #[test]
        fn approx_is_within_twice_exact(
            gaps in proptest::collection::vec((0u64..64, 0u64..32), 1..24),
            head_frac in 0u64..10_000,
        ) {
            let (head, extents) = disjoint_case(&gaps, head_frac);
            let exact = cost(SeekPolicy::ExactDp, head, &extents);
            let approx = cost(SeekPolicy::Approx, head, &extents);
            prop_assert!(exact <= approx, "lattice broken: exact {exact} > approx {approx}");
            prop_assert!(
                approx <= 2 * exact,
                "ratio bound broken: approx {approx} > 2x exact {exact} \
                 (head {head:?}, {extents:?})"
            );
            let lowest = extents.iter().map(|e| e.offset).min();
            if lowest.is_some_and(|m| head <= m) {
                prop_assert_eq!(approx, exact, "head below all extents: sweep must be optimal");
            }
        }

        /// Every policy emits a permutation — each input extent exactly
        /// once — across duplicate offsets and zero-length extents.
        #[test]
        fn every_policy_returns_a_permutation(
            raw in proptest::collection::vec((0u64..300, 0u64..25), 0..24),
            head_gb in 0u64..400,
        ) {
            let extents: Vec<Extent> = raw
                .iter()
                .enumerate()
                .map(|(i, &(offset, size))| ext(i as u32, offset, size))
                .collect();
            let head = Bytes::gb(head_gb);
            let mut out = Vec::new();
            for policy in [
                SeekPolicy::Greedy,
                SeekPolicy::ExactDp,
                SeekPolicy::Approx,
                SeekPolicy::Auto,
            ] {
                plan_with(policy, head, &extents, &mut out);
                prop_assert_eq!(out.len(), extents.len(), "{:?} dropped extents", policy);
                let mut ids: Vec<u32> = out.iter().map(|e| e.object.0).collect();
                ids.sort_unstable();
                let mut want: Vec<u32> = (0..extents.len() as u32).collect();
                want.sort_unstable();
                prop_assert_eq!(ids, want, "{:?} is not a permutation", policy);
            }
        }
    }

    #[test]
    fn auto_switches_between_dp_and_sweep_at_the_cutoff() {
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let make = |n: usize, rng: &mut ChaCha12Rng| -> Vec<Extent> {
            let mut cursor = 0u64;
            (0..n)
                .map(|i| {
                    cursor += rng.gen_range(1..40);
                    let size = rng.gen_range(0..20);
                    let e = ext(i as u32, cursor, size);
                    cursor += size;
                    e
                })
                .collect()
        };
        let head = Bytes::gb(500);
        let small = make(AUTO_EXACT_MAX, &mut rng);
        let big = make(AUTO_EXACT_MAX + 1, &mut rng);
        let (mut auto_out, mut want) = (Vec::new(), Vec::new());
        plan_with(SeekPolicy::Auto, head, &small, &mut auto_out);
        exact_into(head, &small, &mut want);
        assert_eq!(auto_out, want, "auto must run the DP at the cutoff");
        plan_with(SeekPolicy::Auto, head, &big, &mut auto_out);
        approx_into(head, &big, &mut want);
        assert_eq!(auto_out, want, "auto must sweep past the cutoff");
    }

    #[test]
    fn seek_policy_parses_cli_spellings() {
        assert_eq!(SeekPolicy::parse("greedy"), Some(SeekPolicy::Greedy));
        assert_eq!(SeekPolicy::parse("exact"), Some(SeekPolicy::ExactDp));
        assert_eq!(SeekPolicy::parse("EXACT-DP"), Some(SeekPolicy::ExactDp));
        assert_eq!(SeekPolicy::parse(" approx "), Some(SeekPolicy::Approx));
        assert_eq!(SeekPolicy::parse("auto"), Some(SeekPolicy::Auto));
        assert_eq!(SeekPolicy::parse("optimal"), None);
        assert_eq!(SeekPolicy::default(), SeekPolicy::Greedy);
        for policy in [
            SeekPolicy::Greedy,
            SeekPolicy::ExactDp,
            SeekPolicy::Approx,
            SeekPolicy::Auto,
        ] {
            assert_eq!(SeekPolicy::parse(policy.label()), Some(policy));
        }
    }
}
