//! Seek-optimised service order of objects on one tape.
//!
//! "The objects retrieving order within a tape is optimized to reduce the
//! data seek time based on object location information retrieved from the
//! indexing database" (§6). On a linear medium where reading an extent
//! carries the head from its start to its end, the total seek of a service
//! order is the head travel *between* extents.
//!
//! Finding the exact optimum is a line-TSP variant (reads displace the
//! head forward, so it is not plain sortedness); [`plan`] evaluates a small
//! family of sweep-shaped candidate orders that contains the optimum for
//! almost all practical inputs and is never far from it:
//!
//! 1. ascending from the lowest extent (one backward seek, one up-sweep),
//! 2. extents above the head ascending, then the ones below ascending,
//! 3. extents above the head ascending, then the ones below **descending**
//!    (grab-on-the-way-down),
//! 4. below descending first, then above ascending,
//! 5. the nearest below-extent first (a short backward hop), then the
//!    rest ascending from the bottom.
//!
//! [`optimal_order`] (exhaustive permutation search) bounds the gap in the
//! test suite: across randomized cases the chosen candidate stays within a
//! few percent of optimal, and seek time is a minor response-time
//! component in every Figure 9 configuration anyway.

use tapesim_model::tape::Extent;
use tapesim_model::Bytes;

/// Total inter-extent head travel (bytes) of serving `order` from `head`.
pub fn seek_distance(head: Bytes, order: &[Extent]) -> u64 {
    let mut pos = head;
    let mut travel = 0u64;
    for e in order {
        travel += pos.distance(e.offset).get();
        pos = e.end();
    }
    travel
}

/// The cheapest of the sweep-shaped candidate orders (see module docs).
/// Extents must all lie on the same tape; the result contains each exactly
/// once.
pub fn plan(head: Bytes, extents: &[Extent]) -> Vec<Extent> {
    if extents.len() <= 1 {
        return extents.to_vec();
    }
    let mut asc: Vec<Extent> = extents.to_vec();
    asc.sort_by_key(|e| e.offset);
    let (below, above): (Vec<Extent>, Vec<Extent>) = asc.iter().partition(|e| e.offset < head);
    let below_desc: Vec<Extent> = below.iter().rev().copied().collect();

    let mut candidates: Vec<Vec<Extent>> = Vec::with_capacity(5);
    // 1. Plain ascending sweep.
    candidates.push(asc.clone());
    // 2. Above ascending, then below ascending.
    let mut c = above.clone();
    c.extend(below.iter().copied());
    candidates.push(c);
    // 3. Above ascending, then below descending.
    let mut c = above.clone();
    c.extend(below_desc.iter().copied());
    candidates.push(c);
    // 5. Short backward hop to the nearest below-extent, then a plain
    //    ascending sweep of the rest. Wins when one extent sits just
    //    behind the head and the others are far below: the hop costs
    //    little and the sweep restarts from the bottom.
    if let Some(&nearest_below) = below.last() {
        let mut c = vec![nearest_below];
        c.extend(below[..below.len() - 1].iter().copied());
        c.extend(above.iter().copied());
        candidates.push(c);
    }
    // 4. Below descending, then above ascending.
    let mut c = below_desc;
    c.extend(above);
    candidates.push(c);

    candidates
        .into_iter()
        .map(|c| (seek_distance(head, &c), c))
        // First minimum on ties, matching `min_by_key`; the candidate list
        // is never empty, so the fallback is unreachable.
        .reduce(|best, next| if next.0 < best.0 { next } else { best })
        .map(|(_, c)| c)
        .unwrap_or_default()
}

/// Allocation-free [`plan`]: writes the chosen order into `out` (cleared
/// first), reusing its capacity across calls. Produces exactly the order
/// [`plan`] returns — same candidate family, same evaluation order, same
/// first-minimum tie-break — without materialising any candidate: each
/// sweep shape is walked as an index sequence over one sorted buffer and
/// only the winner is laid out, by in-place reverse/rotate.
///
/// The hot engines call this with a per-run scratch vector; [`plan`] stays
/// as the simple allocating form for one-shot callers.
pub fn plan_into(head: Bytes, extents: &[Extent], out: &mut Vec<Extent>) {
    out.clear();
    out.extend_from_slice(extents);
    if extents.len() <= 1 {
        return;
    }
    out.sort_by_key(|e| e.offset);
    // `out` is ascending; the first `k` extents lie below the head.
    let k = out.partition_point(|e| e.offset < head);
    let n = out.len();
    if k == 0 {
        // Nothing below the head: every sweep shape degenerates to the
        // plain ascending order `out` already holds, and `plan`'s
        // first-minimum tie-break picks exactly that candidate.
        return;
    }

    let dist = |order: &mut dyn Iterator<Item = usize>| -> u64 {
        let mut pos = head;
        let mut travel = 0u64;
        for i in order {
            let e = &out[i];
            travel += pos.distance(e.offset).get();
            pos = e.end();
        }
        travel
    };
    // The same candidates `plan` builds, in the same evaluation order:
    // ascending; above-then-below; above-then-below-descending;
    // nearest-below hop (only when a below part exists); below-descending
    // first. Strict `<` keeps the first minimum on ties, like `plan`.
    let mut best_shape = 0usize;
    let mut best_travel = dist(&mut (0..n));
    let mut consider = |shape: usize, travel: u64| {
        if travel < best_travel {
            best_travel = travel;
            best_shape = shape;
        }
    };
    consider(1, dist(&mut (k..n).chain(0..k)));
    consider(2, dist(&mut (k..n).chain((0..k).rev())));
    if k > 0 {
        consider(
            3,
            dist(&mut std::iter::once(k - 1).chain(0..k - 1).chain(k..n)),
        );
    }
    consider(4, dist(&mut (0..k).rev().chain(k..n)));

    match best_shape {
        0 => {}
        1 => out.rotate_left(k),
        2 => {
            out[..k].reverse();
            out.rotate_left(k);
        }
        3 => out[..k].rotate_right(1),
        _ => out[..k].reverse(),
    }
}

/// Exhaustive optimum over all permutations — O(n!), for tests and tiny
/// inputs only.
pub fn optimal_order(head: Bytes, extents: &[Extent]) -> Vec<Extent> {
    assert!(extents.len() <= 8, "exhaustive search capped at 8 extents");
    // Seed with the identity order so `best` always holds a permutation.
    let mut best = (seek_distance(head, extents), extents.to_vec());
    let mut current = extents.to_vec();
    permute(&mut current, 0, &mut |perm| {
        let d = seek_distance(head, perm);
        if d < best.0 {
            best = (d, perm.to_vec());
        }
    });
    best.1
}

fn permute<F: FnMut(&[Extent])>(items: &mut [Extent], k: usize, visit: &mut F) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;
    use tapesim_model::ObjectId;

    fn ext(id: u32, offset_gb: u64, size_gb: u64) -> Extent {
        Extent {
            object: ObjectId(id),
            offset: Bytes::gb(offset_gb),
            size: Bytes::gb(size_gb),
        }
    }

    #[test]
    fn forward_sweep_when_head_below_all() {
        let extents = [ext(0, 10, 1), ext(1, 5, 1), ext(2, 20, 1)];
        let order = plan(Bytes::ZERO, &extents);
        let ids: Vec<u32> = order.iter().map(|e| e.object.0).collect();
        assert_eq!(ids, vec![1, 0, 2]);
        // Travel: 0→5, 6→10, 11→20 = 5+4+9.
        assert_eq!(seek_distance(Bytes::ZERO, &order), Bytes::gb(18).get());
    }

    #[test]
    fn nearest_first_when_all_below_and_sparse() {
        // Head at 200 GB, sparse extents below: grab on the way down.
        let extents = [ext(0, 10, 2), ext(1, 60, 5)];
        let order = plan(Bytes::gb(200), &extents);
        assert_eq!(order[0].object, ObjectId(1), "highest below-extent first");
        // 200→60 (140) + 65→10 (55) = 195 GB of travel.
        assert_eq!(seek_distance(Bytes::gb(200), &order), Bytes::gb(195).get());
    }

    #[test]
    fn above_first_when_head_in_the_middle() {
        let extents = [ext(0, 101, 2), ext(1, 2, 1)];
        let order = plan(Bytes::gb(100), &extents);
        assert_eq!(
            order[0].object,
            ObjectId(0),
            "serve the near-above extent first"
        );
    }

    #[test]
    fn matches_exhaustive_on_canonical_cases() {
        let cases: Vec<(u64, Vec<Extent>)> = vec![
            (0, vec![ext(0, 10, 2), ext(1, 30, 5), ext(2, 1, 1)]),
            (
                50,
                vec![ext(0, 10, 2), ext(1, 60, 5), ext(2, 45, 3), ext(3, 90, 1)],
            ),
            (200, vec![ext(0, 10, 2), ext(1, 60, 5)]),
            (
                35,
                vec![ext(0, 30, 4), ext(1, 36, 4), ext(2, 20, 4), ext(3, 50, 4)],
            ),
        ];
        for (head_gb, extents) in cases {
            let head = Bytes::gb(head_gb);
            let ours = seek_distance(head, &plan(head, &extents));
            let best = seek_distance(head, &optimal_order(head, &extents));
            assert_eq!(ours, best, "head={head_gb} GB, extents={extents:?}");
        }
    }

    #[test]
    fn within_a_few_percent_of_optimal_on_random_cases() {
        let mut rng = ChaCha12Rng::seed_from_u64(21);
        for case in 0..200 {
            let n = rng.gen_range(2..=6);
            let mut extents = Vec::new();
            let mut cursor = 0u64;
            for i in 0..n {
                cursor += rng.gen_range(0..60);
                let size = rng.gen_range(1..=16);
                extents.push(ext(i, cursor, size));
                cursor += size;
            }
            let subset: Vec<Extent> = extents
                .iter()
                .filter(|_| rng.gen_bool(0.7))
                .copied()
                .collect();
            if subset.is_empty() {
                continue;
            }
            let head = Bytes::gb(rng.gen_range(0..=cursor));
            let ours = seek_distance(head, &plan(head, &subset));
            let best = seek_distance(head, &optimal_order(head, &subset));
            assert!(
                ours as f64 <= best as f64 * 1.10 + 1.0,
                "case {case}: ours {ours} vs optimal {best} (head {head:?}, {subset:?})"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(plan(Bytes::ZERO, &[]).is_empty());
        let one = [ext(0, 7, 1)];
        assert_eq!(plan(Bytes::gb(50), &one), one.to_vec());
    }

    /// The scratch-backed planner must return exactly what the allocating
    /// one returns — order, not just cost — across random heads, extent
    /// layouts (including ties on offset) and a reused scratch buffer, so
    /// the hot engines can swap it in without any behavioural drift.
    #[test]
    fn plan_into_is_order_identical_to_plan() {
        let mut rng = ChaCha12Rng::seed_from_u64(77);
        let mut scratch = Vec::new();
        for case in 0..500 {
            let n = rng.gen_range(0..=7);
            let mut extents = Vec::new();
            for i in 0..n {
                // Coarse offsets make equal-offset ties common, exercising
                // the stable sort and first-minimum tie-breaks.
                let offset = rng.gen_range(0..12) * 25;
                let size = rng.gen_range(1..=20);
                extents.push(ext(i, offset, size));
            }
            let head = Bytes::gb(rng.gen_range(0..=400));
            let expected = plan(head, &extents);
            plan_into(head, &extents, &mut scratch);
            assert_eq!(
                scratch, expected,
                "case {case}: head {head:?}, extents {extents:?}"
            );
        }
    }

    #[test]
    fn result_is_a_permutation() {
        let extents: Vec<Extent> = (0..6)
            .map(|i| ext(i, 13 * (i as u64 + 1) % 97, 2))
            .collect();
        let order = plan(Bytes::gb(40), &extents);
        assert_eq!(order.len(), extents.len());
        let mut ids: Vec<u32> = order.iter().map(|e| e.object.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }
}
