//! The execution model: a [`World`] handles events, a [`Scheduler`] drives it.
//!
//! The engine is single-threaded and fully deterministic. A simulation is a
//! type implementing [`World`]; its `handle` method receives each event in
//! timestamp order together with a mutable scheduler through which it can
//! schedule (or cancel) further events.

use crate::queue::{EventHandle, EventQueue, Priority};
use crate::time::SimTime;

/// A simulation model driven by events of type `Self::Event`.
pub trait World {
    /// The event alphabet of this simulation.
    type Event;

    /// Handles one event occurring at `now`.
    ///
    /// The handler may schedule follow-up events through `sched`. It must not
    /// assume anything about wall-clock time; `now` is the only clock.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The configured horizon was reached with events still pending.
    HorizonReached,
    /// The configured event budget was exhausted.
    BudgetExhausted,
}

/// Event scheduler and simulation clock.
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
    events_processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates a scheduler whose event pool holds `capacity` pending events
    /// before reallocating. Sizing this to the expected concurrent-event
    /// high-water mark makes steady-state execution allocation-free.
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event count.
    pub fn max_pending(&self) -> usize {
        self.queue.max_len()
    }

    /// Schedules an event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current clock).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules an event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventHandle {
        self.queue.push(self.now + delay, event)
    }

    /// Schedules with an explicit same-time priority (lower fires first).
    pub fn schedule_at_with_priority(
        &mut self,
        at: SimTime,
        priority: Priority,
        event: E,
    ) -> EventHandle {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push_with_priority(at, priority, event)
    }

    /// Cancels a pending event; returns whether it was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Runs until the queue drains. Returns the final clock value.
    pub fn run<W: World<Event = E>>(&mut self, world: &mut W) -> SimTime {
        let (_outcome, end) = self.run_bounded(world, SimTime::MAX, u64::MAX);
        end
    }

    /// Runs until the queue drains, the clock passes `horizon`, or
    /// `max_events` have been dispatched — whichever comes first.
    ///
    /// The `horizon` is inclusive: events stamped exactly at the horizon are
    /// still dispatched.
    pub fn run_bounded<W: World<Event = E>>(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        max_events: u64,
    ) -> (RunOutcome, SimTime) {
        if horizon == SimTime::MAX && max_events == u64::MAX {
            // Unbounded run (the common case behind [`Scheduler::run`]):
            // the horizon is inclusive, so even a `SimTime::MAX` event is
            // dispatched, and the budget cannot be exhausted — pop
            // directly instead of peeking the heap top twice per event.
            while let Some((time, event)) = self.queue.pop() {
                debug_assert!(time >= self.now, "event queue went backwards in time");
                self.now = time;
                self.events_processed += 1;
                world.handle(time, event, self);
            }
            return (RunOutcome::Drained, self.now);
        }
        let mut budget = max_events;
        loop {
            if budget == 0 {
                return (RunOutcome::BudgetExhausted, self.now);
            }
            let Some(next_time) = self.queue.peek_time() else {
                return (RunOutcome::Drained, self.now);
            };
            if next_time > horizon {
                return (RunOutcome::HorizonReached, self.now);
            }
            // `peek_time` just returned `Some`, so the queue cannot be empty.
            let Some((time, event)) = self.queue.pop() else {
                return (RunOutcome::Drained, self.now);
            };
            debug_assert!(time >= self.now, "event queue went backwards in time");
            self.now = time;
            self.events_processed += 1;
            budget -= 1;
            world.handle(time, event, self);
        }
    }

    /// Resets the clock to zero, discarding all pending events.
    ///
    /// Counters ([`Scheduler::events_processed`]) are preserved so that a
    /// sequence of sub-simulations can be accounted together.
    pub fn reset_clock(&mut self) {
        self.queue.clear();
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(f64, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now.as_secs(), ev));
            // Event 1 spawns two children, exercising nested scheduling.
            if ev == 1 {
                sched.schedule_in(SimTime::from_secs(0.5), 10);
                sched.schedule_at(now + SimTime::from_secs(0.25), 11);
            }
        }
    }

    #[test]
    fn runs_in_order_with_nested_scheduling() {
        let mut w = Recorder { seen: Vec::new() };
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1.0), 1);
        s.schedule_at(SimTime::from_secs(2.0), 2);
        let end = s.run(&mut w);
        assert_eq!(
            w.seen,
            vec![(1.0, 1), (1.25, 11), (1.5, 10), (2.0, 2)],
            "children interleave before the later root event"
        );
        assert_eq!(end, SimTime::from_secs(2.0));
        assert_eq!(s.events_processed(), 4);
    }

    #[test]
    fn horizon_stops_early_inclusive() {
        let mut w = Recorder { seen: Vec::new() };
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1.0), 0);
        s.schedule_at(SimTime::from_secs(2.0), 0);
        s.schedule_at(SimTime::from_secs(3.0), 0);
        let (outcome, end) = s.run_bounded(&mut w, SimTime::from_secs(2.0), u64::MAX);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(end, SimTime::from_secs(2.0));
        assert_eq!(w.seen.len(), 2, "event at the horizon still fires");
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn event_budget() {
        let mut w = Recorder { seen: Vec::new() };
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::from_secs(i as f64), 0);
        }
        let (outcome, _) = s.run_bounded(&mut w, SimTime::MAX, 4);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(w.seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_scheduling() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                // Attempt to schedule one second before `now`.
                sched.schedule_at(now.saturating_sub(SimTime::from_secs(1.0)), ());
            }
        }
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5.0), ());
        s.run(&mut Bad);
    }

    #[test]
    fn reset_clock_discards_pending() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1.0), 1);
        s.reset_clock();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.now(), SimTime::ZERO);
    }
}
