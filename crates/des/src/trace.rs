//! Typed event tracing for debugging, tests and invariant auditing.
//!
//! A [`Tracer`] records [`TraceEvent`]s at simulation timestamps.
//! Simulations call [`Tracer::emit`] at interesting points; tests assert on
//! the resulting sequence, the [`crate::audit::TraceAuditor`] checks
//! physical invariants over it, and debugging sessions can dump it via
//! `Display`. The disabled default records nothing.
//!
//! The engine crate is domain-agnostic, so events carry *keys* — packed
//! integer forms of the domain's tape/drive identifiers ([`TapeKey`],
//! [`DriveKey`]). The domain layer (the model crate) provides conversions
//! between its rich identifier types and these keys.

use crate::time::SimTime;
use std::fmt;

/// Packed tape identifier: `library << 32 | slot`.
///
/// The packing is part of this crate's public contract so that domain
/// crates can map their identifiers in and out without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TapeKey(pub u64);

impl TapeKey {
    /// Packs a (library, slot) pair.
    pub fn pack(library: u32, slot: u32) -> TapeKey {
        TapeKey(((library as u64) << 32) | slot as u64)
    }

    /// The library part.
    pub fn library(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The slot part.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for TapeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}:T{}", self.library(), self.slot())
    }
}

/// Packed drive identifier: `library << 16 | bay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DriveKey(pub u32);

impl DriveKey {
    /// Packs a (library, bay) pair.
    pub fn pack(library: u16, bay: u16) -> DriveKey {
        DriveKey(((library as u32) << 16) | bay as u32)
    }

    /// The library part.
    pub fn library(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The bay part.
    pub fn bay(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for DriveKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}:D{}", self.library(), self.bay())
    }
}

/// One simulation event, in the vocabulary the auditor understands.
///
/// Events are emitted at a monotone wall of `now` timestamps; events that
/// describe an *interval* (an exchange occupying a robot arm, a streaming
/// window on a drive) carry the interval explicitly so the auditor can
/// check exclusivity without replaying the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Initial condition: `drive` already holds `tape` when the request
    /// starts (carried over from a previous request or startup mounts).
    AssumeMounted { drive: DriveKey, tape: TapeKey },
    /// A tape job of the current request was submitted: `job` is the
    /// request-local job index, `tape` the cartridge it reads.
    JobSubmitted { job: u32, tape: TapeKey },
    /// `drive` relinquished `tape` (rewind + unload begins).
    Unmounted { drive: DriveKey, tape: TapeKey },
    /// A robot exchange bringing `tape` onto `drive` holds `arm` of the
    /// drive's library for `[start, finish]`.
    ExchangeBegun {
        drive: DriveKey,
        tape: TapeKey,
        arm: u32,
        start: SimTime,
        finish: SimTime,
    },
    /// The exchange completed; `drive` now holds `tape`.
    Mounted { drive: DriveKey, tape: TapeKey },
    /// `drive` streams `extents` extents of `job` from `tape` over
    /// `[start, finish]` (`seek` + `transfer` seconds, back to back).
    Transfer {
        drive: DriveKey,
        tape: TapeKey,
        job: u32,
        extents: u32,
        seek: SimTime,
        transfer: SimTime,
        start: SimTime,
        finish: SimTime,
    },
    /// `job` finished streaming on `drive`.
    JobCompleted { job: u32, drive: DriveKey },
    /// `drive` permanently failed at `at`. The event is emitted when the
    /// scheduler *notices* (at or after `at`); no service window on the
    /// drive may extend past `at`.
    DriveFailed { drive: DriveKey, at: SimTime },
    /// The robot of `library` is jammed (no exchanges) over
    /// `[start, finish]`. Jam windows are known up front and emitted in
    /// the trace prologue.
    RobotJammed {
        library: u32,
        start: SimTime,
        finish: SimTime,
    },
    /// `job`'s read on `drive` hit media bad-spots: it burned `retries`
    /// retries costing `penalty` of extra window time. If `fatal`, the
    /// retry budget was exhausted and the job must be failed over or
    /// declared lost.
    ReadFaulted {
        job: u32,
        drive: DriveKey,
        retries: u32,
        penalty: SimTime,
        fatal: bool,
    },
    /// `job` terminally failed: retries exhausted and no replica to fail
    /// over to (or no surviving drive can serve it).
    JobLost { job: u32 },
    /// `job`'s data was re-requested from a replica copy as the new job
    /// `replacement` (which gets its own `JobSubmitted`).
    FailedOver { job: u32, replacement: u32 },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::AssumeMounted { drive, tape } => {
                write!(f, "{drive} starts with {tape} mounted")
            }
            TraceEvent::JobSubmitted { job, tape } => {
                write!(f, "job {job} submitted for {tape}")
            }
            TraceEvent::Unmounted { drive, tape } => write!(f, "{drive} unloads {tape}"),
            TraceEvent::ExchangeBegun {
                drive,
                tape,
                arm,
                start,
                finish,
            } => write!(
                f,
                "{drive} begins exchange for {tape} (arm {arm}, {start} .. {finish})"
            ),
            TraceEvent::Mounted { drive, tape } => write!(f, "{drive} mounted {tape}"),
            TraceEvent::Transfer {
                drive,
                tape,
                job,
                extents,
                seek,
                transfer,
                ..
            } => write!(
                f,
                "{drive} streams {extents} extent(s) of job {job} from {tape} \
                 (seek {seek}, transfer {transfer})"
            ),
            TraceEvent::JobCompleted { job, drive } => {
                write!(f, "{drive} done (job {job})")
            }
            TraceEvent::DriveFailed { drive, at } => {
                write!(f, "{drive} permanently failed at {at}")
            }
            TraceEvent::RobotJammed {
                library,
                start,
                finish,
            } => write!(f, "L{library} robot jammed ({start} .. {finish})"),
            TraceEvent::ReadFaulted {
                job,
                drive,
                retries,
                penalty,
                fatal,
            } => write!(
                f,
                "{drive} read fault on job {job}: {retries} retrie(s), +{penalty}{}",
                if fatal { ", FATAL" } else { "" }
            ),
            TraceEvent::JobLost { job } => write!(f, "job {job} lost"),
            TraceEvent::FailedOver { job, replacement } => {
                write!(f, "job {job} failed over to replica job {replacement}")
            }
        }
    }
}

/// One traced event with its emission timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// When the event was emitted (for interval events: when the interval
    /// became known, which is at or before its start).
    pub time: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Collects [`TraceEntry`] records when enabled.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// A tracer that records everything.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// Whether this tracer records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at `time` if enabled.
    #[inline]
    pub fn emit(&mut self, time: SimTime, event: TraceEvent) {
        if self.enabled {
            self.entries.push(TraceEntry { time, event });
        }
    }

    /// The recorded entries, in emission order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Drops all recorded entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "[{:>12}] {}", format!("{}", e.time), e.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip_and_display() {
        let t = TapeKey::pack(2, 15);
        assert_eq!((t.library(), t.slot()), (2, 15));
        assert_eq!(format!("{t}"), "L2:T15");
        let d = DriveKey::pack(1, 3);
        assert_eq!((d.library(), d.bay()), (1, 3));
        assert_eq!(format!("{d}"), "L1:D3");
    }

    #[test]
    fn fault_events_display() {
        let drive = DriveKey::pack(1, 2);
        let shown = |e: TraceEvent| format!("{e}");
        assert_eq!(
            shown(TraceEvent::DriveFailed {
                drive,
                at: SimTime::from_secs(30.0),
            }),
            "L1:D2 permanently failed at 30.000s"
        );
        assert!(shown(TraceEvent::RobotJammed {
            library: 0,
            start: SimTime::from_secs(1.0),
            finish: SimTime::from_secs(2.0),
        })
        .contains("robot jammed"));
        let faulted = shown(TraceEvent::ReadFaulted {
            job: 4,
            drive,
            retries: 2,
            penalty: SimTime::from_secs(9.0),
            fatal: true,
        });
        assert!(
            faulted.contains("2 retrie(s)") && faulted.contains("FATAL"),
            "{faulted}"
        );
        assert_eq!(shown(TraceEvent::JobLost { job: 7 }), "job 7 lost");
        assert_eq!(
            shown(TraceEvent::FailedOver {
                job: 7,
                replacement: 9,
            }),
            "job 7 failed over to replica job 9"
        );
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(
            SimTime::ZERO,
            TraceEvent::Mounted {
                drive: DriveKey::pack(0, 0),
                tape: TapeKey::pack(0, 1),
            },
        );
        assert!(t.entries().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_records_in_order_and_displays() {
        let mut t = Tracer::enabled();
        let drive = DriveKey::pack(0, 3);
        let tape = TapeKey::pack(0, 7);
        t.emit(SimTime::from_secs(1.0), TraceEvent::Mounted { drive, tape });
        t.emit(
            SimTime::from_secs(1.0),
            TraceEvent::Transfer {
                drive,
                tape,
                job: 0,
                extents: 2,
                seek: SimTime::from_secs(1.5),
                transfer: SimTime::from_secs(100.0),
                start: SimTime::from_secs(1.0),
                finish: SimTime::from_secs(102.5),
            },
        );
        assert_eq!(t.entries().len(), 2);
        let shown = format!("{t}");
        assert!(shown.contains("L0:D3 mounted L0:T7"), "{shown}");
        assert!(shown.contains("streams 2 extent(s)"), "{shown}");
        t.clear();
        assert!(t.entries().is_empty());
    }
}
