//! Optional event tracing for debugging and tests.
//!
//! A [`Tracer`] records labelled timestamps. Simulations call
//! [`Tracer::emit`] at interesting points; tests assert on the resulting
//! sequence, and debugging sessions can dump it. The no-op default compiles
//! to nothing in the hot path when tracing is disabled.

use crate::time::SimTime;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the event occurred.
    pub time: SimTime,
    /// Free-form label, e.g. `"lib0/drive3 mount tape 17"`.
    pub label: String,
}

/// Collects [`TraceEntry`] records when enabled.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// A tracer that records everything.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// Whether this tracer records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a label at `time` if enabled. The label closure is only
    /// evaluated when tracing is on, so formatting cost is avoided otherwise.
    #[inline]
    pub fn emit<F: FnOnce() -> String>(&mut self, time: SimTime, label: F) {
        if self.enabled {
            self.entries.push(TraceEntry {
                time,
                label: label(),
            });
        }
    }

    /// The recorded entries, in emission order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Drops all recorded entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "[{:>12}] {}", format!("{}", e.time), e.label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_skips_formatting() {
        let mut t = Tracer::disabled();
        let mut evaluated = false;
        t.emit(SimTime::ZERO, || {
            evaluated = true;
            "x".to_string()
        });
        assert!(!evaluated, "label closure must not run when disabled");
        assert!(t.entries().is_empty());
    }

    #[test]
    fn enabled_records_in_order() {
        let mut t = Tracer::enabled();
        t.emit(SimTime::from_secs(1.0), || "a".into());
        t.emit(SimTime::from_secs(2.0), || "b".into());
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].label, "a");
        let shown = format!("{t}");
        assert!(shown.contains("a") && shown.contains("b"));
        t.clear();
        assert!(t.entries().is_empty());
    }
}
