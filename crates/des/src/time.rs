//! Simulation time.
//!
//! [`SimTime`] wraps an `f64` number of seconds since simulation start. The
//! wrapper enforces the two properties a DES clock needs and a bare `f64`
//! lacks: values are always finite (so `Ord` is total) and never negative.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulation time, in seconds since simulation start.
///
/// `SimTime` is also used for durations; the engine does not distinguish
/// instants from spans, matching common DES practice where both live on the
/// same axis. All arithmetic debug-asserts that results stay finite and
/// non-negative.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Largest representable time; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(f64::MAX);

    /// Creates a time from a number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    #[inline]
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        // `+ 0.0` turns -0.0 into +0.0 so IEEE total order (`Ord`) agrees
        // with numeric equality.
        SimTime(secs + 0.0)
    }

    /// The raw number of seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: returns zero instead of going negative.
    ///
    /// Useful when decomposing measured spans where floating-point noise can
    /// push a nominally non-negative difference slightly below zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        // `+ 0.0` normalises a -0.0 clamp result for `total_cmp`-based `Ord`.
        SimTime((self.0 - rhs.0).max(0.0) + 0.0)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// `SimTime` construction forbids NaN and negative values, so IEEE total
// order coincides with the numeric order and gives a branch-free `Ord`.
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        let out = self.0 + rhs.0;
        debug_assert!(out.is_finite());
        SimTime(out)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Exact subtraction.
    ///
    /// # Panics
    ///
    /// Debug-panics if the result would be negative; use
    /// [`SimTime::saturating_sub`] when decomposing measured values.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        let out = self.0 - rhs.0;
        debug_assert!(
            out >= 0.0,
            "SimTime subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        SimTime(out.max(0.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}s", prec, self.0)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(12.5);
        assert_eq!(t.as_secs(), 12.5);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(1.5);
        assert_eq!((a + b).as_secs(), 4.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 2.0).as_secs(), 6.0);
        assert_eq!((a / 2.0).as_secs(), 1.5);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn display_formatting() {
        let t = SimTime::from_secs(1.23456);
        assert_eq!(format!("{t}"), "1.235s");
        assert_eq!(format!("{t:.1}"), "1.2s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mul_by_nan_panics() {
        let _ = SimTime::from_secs(1.0) * f64::NAN;
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mul_by_infinity_panics() {
        let _ = SimTime::from_secs(1.0) * f64::INFINITY;
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mul_by_negative_panics() {
        let _ = SimTime::from_secs(1.0) * -2.0;
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn div_by_zero_panics() {
        let _ = SimTime::from_secs(1.0) / 0.0;
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn div_by_nan_panics() {
        let _ = SimTime::from_secs(1.0) / f64::NAN;
    }

    #[test]
    fn negative_zero_is_normalised() {
        // -0.0 passes the `>= 0.0` gate; the `+ 0.0` canonicalisation must
        // keep `total_cmp`-based Ord consistent with numeric equality.
        let z = SimTime::from_secs(-0.0);
        assert_eq!(z.cmp(&SimTime::ZERO), std::cmp::Ordering::Equal);
        assert_eq!(z.max(SimTime::ZERO), z.min(SimTime::ZERO));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `saturating_sub` never goes negative and agrees with exact
        /// subtraction whenever the exact result is non-negative — even
        /// when cancellation would nudge a float difference below zero.
        #[test]
        fn saturating_sub_never_negative(a in 0.0f64..1e12, b in 0.0f64..1e12) {
            let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
            let d = ta.saturating_sub(tb);
            prop_assert!(d >= SimTime::ZERO);
            if a >= b {
                prop_assert_eq!(d.as_secs(), a - b);
            } else {
                prop_assert_eq!(d, SimTime::ZERO);
            }
            // Never below the exact clamp, and ordering stays total.
            prop_assert_eq!(d.cmp(&d), std::cmp::Ordering::Equal);
        }

        /// Ord agrees with the underlying numeric order for all valid
        /// values, including equal ones arriving via different expressions.
        #[test]
        fn ord_matches_numeric_order(a in 0.0f64..1e12, b in 0.0f64..1e12) {
            let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
            prop_assert_eq!(ta.cmp(&tb), a.partial_cmp(&b).unwrap());
            prop_assert_eq!(ta.max(tb).as_secs(), a.max(b));
            prop_assert_eq!(ta.min(tb).as_secs(), a.min(b));
        }
    }
}
