//! Calendar-based FCFS resources.
//!
//! A [`Resource`] models one or more identical servers that perform
//! fixed-duration jobs one at a time (per server). Instead of queueing
//! events, the resource keeps a calendar of when each server becomes free and
//! answers "if a job of length `d` is requested at time `t`, when does it
//! start and finish?". This is exactly the shape of the tape-library robot
//! arm (one server per library) and composes naturally with an event-driven
//! world: the caller schedules completion events at the returned finish time.
//!
//! FCFS fairness holds because requests are issued in non-decreasing request
//! time by the deterministic world and each request immediately claims the
//! earliest-free server.

use crate::time::SimTime;

/// A grant returned by [`Resource::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the job actually begins (>= the request time).
    pub start: SimTime,
    /// When the job completes and the server frees up.
    pub finish: SimTime,
    /// Which server (0-based) runs the job.
    pub server: usize,
}

/// A bank of `k` identical FCFS servers with a free-time calendar.
#[derive(Debug, Clone)]
pub struct Resource {
    free_at: Vec<SimTime>,
    busy: SimTime,
    jobs: u64,
}

impl Resource {
    /// Creates a resource with `servers` identical servers, all free at t=0.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a Resource needs at least one server");
        Resource {
            free_at: vec![SimTime::ZERO; servers],
            busy: SimTime::ZERO,
            jobs: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Requests a job of length `duration` at time `at`; books the
    /// earliest-free server and returns the grant.
    pub fn acquire(&mut self, at: SimTime, duration: SimTime) -> Grant {
        // Earliest-free server, lowest index on ties (strict `<` keeps the
        // first minimum). The constructor guarantees at least one server.
        let mut server = 0;
        let mut free = self.free_at[0];
        for (i, &t) in self.free_at.iter().enumerate().skip(1) {
            if t < free {
                server = i;
                free = t;
            }
        }
        let start = at.max(free);
        let finish = start + duration;
        self.free_at[server] = finish;
        self.busy += duration;
        self.jobs += 1;
        Grant {
            start,
            finish,
            server,
        }
    }

    /// The earliest time any server is free, given a request at `at`.
    pub fn earliest_start(&self, at: SimTime) -> SimTime {
        let free = self
            .free_at
            .iter()
            .copied()
            .reduce(SimTime::min)
            .unwrap_or(SimTime::ZERO);
        at.max(free)
    }

    /// Total busy time booked across all servers.
    pub fn total_busy(&self) -> SimTime {
        self.busy
    }

    /// Number of jobs granted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilisation over `[0, horizon]` across all servers (0..=1).
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs() / (horizon.as_secs() * self.free_at.len() as f64)
    }

    /// Clears the calendar back to "all free at t=0" keeping counters.
    pub fn reset(&mut self) {
        for f in &mut self.free_at {
            *f = SimTime::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_server_serialises() {
        let mut r = Resource::new(1);
        let g1 = r.acquire(t(0.0), t(10.0));
        let g2 = r.acquire(t(5.0), t(10.0));
        assert_eq!(g1.start, t(0.0));
        assert_eq!(g1.finish, t(10.0));
        assert_eq!(g2.start, t(10.0), "second job waits for the first");
        assert_eq!(g2.finish, t(20.0));
    }

    #[test]
    fn idle_gap_respected() {
        let mut r = Resource::new(1);
        r.acquire(t(0.0), t(2.0));
        let g = r.acquire(t(100.0), t(1.0));
        assert_eq!(g.start, t(100.0), "server idles until the request arrives");
    }

    #[test]
    fn two_servers_parallelise() {
        let mut r = Resource::new(2);
        let g1 = r.acquire(t(0.0), t(10.0));
        let g2 = r.acquire(t(0.0), t(10.0));
        let g3 = r.acquire(t(0.0), t(10.0));
        assert_eq!(g1.start, t(0.0));
        assert_eq!(g2.start, t(0.0));
        assert_ne!(g1.server, g2.server);
        assert_eq!(g3.start, t(10.0), "third job waits for a free server");
    }

    #[test]
    fn accounting() {
        let mut r = Resource::new(2);
        r.acquire(t(0.0), t(4.0));
        r.acquire(t(0.0), t(6.0));
        assert_eq!(r.total_busy(), t(10.0));
        assert_eq!(r.jobs(), 2);
        let u = r.utilisation(t(10.0));
        assert!((u - 0.5).abs() < 1e-12, "10 busy over 2x10 capacity");
    }

    #[test]
    fn earliest_start_matches_acquire() {
        let mut r = Resource::new(1);
        r.acquire(t(0.0), t(7.0));
        assert_eq!(r.earliest_start(t(3.0)), t(7.0));
        assert_eq!(r.earliest_start(t(9.0)), t(9.0));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Resource::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// With non-decreasing request times (how the engine uses it),
        /// grants per server never overlap, never start before the
        /// request, and total busy time is the sum of durations.
        #[test]
        fn grants_are_consistent(
            servers in 1usize..4,
            jobs in proptest::collection::vec((0u32..50, 1u32..100), 1..60),
        ) {
            let mut r = Resource::new(servers);
            let mut at = 0.0f64;
            let mut per_server: Vec<Vec<Grant>> = vec![Vec::new(); servers];
            let mut total = 0.0;
            for &(gap, dur) in &jobs {
                at += gap as f64;
                let g = r.acquire(SimTime::from_secs(at), SimTime::from_secs(dur as f64));
                prop_assert!(g.start >= SimTime::from_secs(at));
                prop_assert_eq!(g.finish, g.start + SimTime::from_secs(dur as f64));
                per_server[g.server].push(g);
                total += dur as f64;
            }
            for grants in &per_server {
                for pair in grants.windows(2) {
                    prop_assert!(
                        pair[1].start >= pair[0].finish,
                        "server double-booked: {:?} then {:?}",
                        pair[0],
                        pair[1]
                    );
                }
            }
            prop_assert!((r.total_busy().as_secs() - total).abs() < 1e-9);
        }

        /// FCFS: when requests arrive in non-decreasing time order, the
        /// granted start times are non-decreasing too — a later request
        /// never jumps ahead of an earlier one.
        #[test]
        fn fcfs_grants_start_in_request_order(
            servers in 1usize..4,
            jobs in proptest::collection::vec((0u32..50, 1u32..100), 1..60),
        ) {
            let mut r = Resource::new(servers);
            let mut at = 0.0f64;
            let mut last_start = SimTime::ZERO;
            for &(gap, dur) in &jobs {
                at += gap as f64;
                let g = r.acquire(SimTime::from_secs(at), SimTime::from_secs(dur as f64));
                prop_assert!(
                    g.start >= last_start,
                    "start went backwards: {:?} after {:?}",
                    g.start,
                    last_start
                );
                last_start = g.start;
            }
        }
    }
}
