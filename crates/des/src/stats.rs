//! Online statistics used by simulations.
//!
//! [`Welford`] provides numerically stable streaming mean/variance;
//! [`TimeWeighted`] tracks the time-weighted average of a piecewise-constant
//! signal (e.g. queue depth or the number of busy drives over time);
//! [`Samples`] retains every observation so percentiles (p50/p99 sojourn
//! and the like) can be extracted after the run.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A retained-sample accumulator for percentile extraction.
///
/// Unlike [`Welford`] this keeps every observation, trading memory for the
/// ability to answer order-statistic queries (median, p99 tails) exactly.
/// Simulation runs are bounded (a few hundred to a few hundred thousand
/// requests), so retention is cheap; for unbounded streams use [`Welford`].
///
/// Percentile queries sort lazily, once: the first
/// [`Samples::percentile`] after a mutation sorts a copy and caches it,
/// and later queries (p50 then p99 on the same metric, say) reuse the
/// cache. [`Samples::push`]/[`Samples::merge`] invalidate it.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    /// Lazily sorted copy of `values`; reset whenever `values` changes.
    /// Not part of the serialized form (see the hand-written serde impls
    /// below, which mirror what `derive` produced before this field).
    sorted: std::sync::OnceLock<Vec<f64>>,
}

impl serde::Serialize for Samples {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            String::from("values"),
            serde::Serialize::to_value(&self.values),
        )])
    }
}

impl serde::Deserialize for Samples {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "Samples"))?;
        let values = match serde::value::field(fields, "values") {
            Some(x) => serde::Deserialize::from_value(x)?,
            None => return Err(serde::Error::missing("values", "Samples")),
        };
        Ok(Samples {
            values,
            sorted: std::sync::OnceLock::new(),
        })
    }
}

impl Samples {
    /// An empty accumulator.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted.take();
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) by linear interpolation
    /// between order statistics; NaN when empty. Sorts lazily on first
    /// call after a mutation; repeat queries hit the cached order.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut sorted = self.values.clone();
            sorted.sort_by(f64::total_cmp);
            sorted
        });
        let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        let at = |i: usize| sorted.get(i).copied().unwrap_or(f64::NAN);
        at(lo) * (1.0 - frac) + at(hi) * frac
    }

    /// Appends all of `other`'s observations.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted.take();
    }

    /// The raw observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Time-weighted average of a piecewise-constant signal.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    started: bool,
    start_time: SimTime,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an accumulator; the signal is undefined until the first
    /// [`TimeWeighted::record`].
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            started: false,
            start_time: SimTime::ZERO,
        }
    }

    /// Records that the signal takes `value` from time `at` onwards.
    ///
    /// # Panics
    ///
    /// Debug-panics if `at` precedes the previous record.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if self.started {
            debug_assert!(at >= self.last_time, "TimeWeighted went backwards");
            self.weighted_sum += self.last_value * (at - self.last_time).as_secs();
        } else {
            self.started = true;
            self.start_time = at;
        }
        self.last_time = at;
        self.last_value = value;
    }

    /// Time-weighted mean of the signal over `[start, until]`.
    pub fn mean_until(&self, until: SimTime) -> f64 {
        if !self.started || until <= self.start_time {
            return 0.0;
        }
        let tail = self.last_value * (until.saturating_sub(self.last_time)).as_secs();
        (self.weighted_sum + tail) / (until - self.start_time).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Direct unbiased variance: sum((x-5)^2)/7 = 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_nan());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn samples_percentiles_interpolate() {
        let mut s = Samples::new();
        // Insert shuffled 1..=5 so sorting matters.
        for x in [3.0, 1.0, 5.0, 2.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        // p25 interpolates between the 1st and 2nd order statistics.
        assert!((s.percentile(25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn samples_empty_and_merge() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert!(s.percentile(50.0).is_nan());
        assert_eq!(s.mean(), 0.0);

        let mut a = Samples::new();
        a.push(1.0);
        let mut b = Samples::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.values(), &[1.0, 3.0]);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn samples_percentile_cache_invalidates_on_mutation() {
        let mut s = Samples::new();
        for x in [3.0, 1.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.percentile(100.0), 3.0);
        // Push after a cached query must re-sort.
        s.push(9.0);
        assert_eq!(s.percentile(100.0), 9.0);
        assert_eq!(s.percentile(0.0), 1.0);
        // Merge must invalidate too.
        let mut other = Samples::new();
        other.push(-5.0);
        s.merge(&other);
        assert_eq!(s.percentile(0.0), -5.0);
        // The raw insertion order is untouched by percentile queries.
        assert_eq!(s.values(), &[3.0, 1.0, 2.0, 9.0, -5.0]);
    }

    #[test]
    fn samples_serde_round_trip_ignores_cache() {
        let mut s = Samples::new();
        s.push(2.0);
        s.push(1.0);
        let _ = s.percentile(50.0); // warm the cache pre-serialization
        let v = serde::Serialize::to_value(&s);
        let back: Samples = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back.values(), s.values());
        assert_eq!(back.percentile(100.0), 2.0);
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(0.0), 0.0);
        tw.record(SimTime::from_secs(10.0), 4.0);
        tw.record(SimTime::from_secs(20.0), 0.0);
        // Signal: 0 for 10s, 4 for 10s, 0 for 10s => mean 4/3 over 30s.
        let m = tw.mean_until(SimTime::from_secs(30.0));
        assert!((m - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_before_start() {
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_secs(5.0), 1.0);
        assert_eq!(tw.mean_until(SimTime::from_secs(5.0)), 0.0);
        assert!((tw.mean_until(SimTime::from_secs(6.0)) - 1.0).abs() < 1e-12);
    }
}
