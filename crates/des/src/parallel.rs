//! Conservative time-window execution of partitioned simulations.
//!
//! A simulation whose state splits into partitions that exchange no
//! events can run each partition's event loop on its own thread, as long
//! as *external* injections (the one shared input stream, e.g. request
//! arrivals) are delivered before any partition's clock reaches them.
//! This module provides the machinery for that protocol:
//!
//! * [`window_barriers`] derives the window schedule from the sorted
//!   injection times — each barrier is the *arrival-insertion horizon*:
//!   the earliest injection instant not yet delivered. Every event
//!   strictly below the barrier is safe to execute, because nothing that
//!   could still be injected can precede it (this is the conservative
//!   lookahead: the gap from the last delivered injection to the next
//!   pending one).
//! * [`WindowPartition`] is what a partition must implement: deliver its
//!   own injections below a barrier, then execute events below it.
//! * [`run_windowed`] drives all partitions through the barrier
//!   schedule on scoped threads, with a full synchronization barrier
//!   between rounds, and returns a [`WindowTrace`] recording, per round,
//!   the window bound and the furthest any partition's clock advanced —
//!   the evidence the barrier-correctness tests check.
//!
//! The round barrier is what keeps the protocol *conservative*: no
//! partition starts round `r + 1` until every partition finished round
//! `r`, so a future extension in which partitions do exchange events
//! (cross-library failover, work stealing) only has to deliver them at
//! the round boundary. With today's isolated partitions the rounds are
//! independent, and the schedule being static is what makes the whole
//! run deterministic regardless of thread count.

use crate::time::SimTime;
use std::sync::Barrier;

/// One partition of a windowed simulation.
///
/// Implementations own their slice of the injection stream; the runner
/// only tells them how far time may advance.
pub trait WindowPartition: Send {
    /// Delivers every pending injection stamped strictly below `barrier`
    /// and executes every event strictly below it. After this returns,
    /// [`WindowPartition::clock`] must be `< barrier` (or unchanged if
    /// the partition had nothing to do).
    fn advance(&mut self, barrier: SimTime);

    /// Runs the partition to completion: all injections delivered, the
    /// event queue drained. Called once, after the last window.
    fn drain(&mut self);

    /// The partition's current virtual clock: the timestamp of the last
    /// executed event ([`SimTime::ZERO`] before any).
    fn clock(&self) -> SimTime;
}

/// One synchronization round of a windowed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRound {
    /// The exclusive upper bound partitions were allowed to execute to.
    pub barrier: SimTime,
    /// The furthest any partition's clock stood after the round.
    pub max_clock: SimTime,
}

/// What [`run_windowed`] observed: the per-round barrier ledger.
#[derive(Debug, Clone, Default)]
pub struct WindowTrace {
    /// One entry per synchronization round, in execution order. The
    /// final drain (no barrier) is not recorded here.
    pub rounds: Vec<WindowRound>,
}

impl WindowTrace {
    /// Whether every round respected its window: no partition's clock
    /// reached or passed the barrier while the barrier was active.
    pub fn is_conservative(&self) -> bool {
        self.rounds.iter().all(|r| r.max_clock < r.barrier)
    }
}

/// Derives the window schedule from the sorted injection times: chunks
/// of `chunk` injections per round, each round's barrier being the first
/// injection instant of the *next* chunk (the arrival-insertion
/// horizon). The final chunk needs no barrier — after the last injection
/// is delivered nothing external remains and partitions simply drain.
///
/// A barrier must sit *strictly* above every injection delivered before
/// it — otherwise a partition executing right up to the barrier could
/// pass an undelivered same-instant injection. When the stream repeats a
/// timestamp across a chunk edge, the chunk is grown until the boundary
/// strictly increases.
///
/// `times` must be sorted ascending (as any arrival stream is); `chunk`
/// is clamped to at least 1.
pub fn window_barriers(times: &[SimTime], chunk: usize) -> Vec<SimTime> {
    let chunk = chunk.max(1);
    let mut barriers = Vec::with_capacity(times.len() / chunk);
    let mut next = chunk;
    while let (Some(&prev), Some(&cur)) = (times.get(next - 1), times.get(next)) {
        debug_assert!(prev <= cur, "injection times must be sorted");
        if cur == prev {
            next += 1;
            continue;
        }
        barriers.push(cur);
        next += chunk;
    }
    barriers
}

/// Runs `parts` through the barrier schedule on `threads` OS threads
/// (clamped to the partition count), then drains them. Partitions are
/// assigned to threads round-robin; every thread processes its
/// partitions in index order within a round, and a full thread barrier
/// separates rounds. Returns the per-round [`WindowTrace`].
///
/// Determinism: each partition's execution is a pure function of its
/// own injections — the thread count and round boundaries only change
/// *when* work happens on the wall clock, never what is computed.
pub fn run_windowed<P: WindowPartition>(
    parts: &mut [P],
    barriers: &[SimTime],
    threads: usize,
) -> WindowTrace {
    let nparts = parts.len();
    let mut trace = WindowTrace {
        rounds: Vec::with_capacity(barriers.len()),
    };
    if nparts == 0 {
        return trace;
    }
    let threads = threads.clamp(1, nparts);

    if threads == 1 {
        // Sequential execution of the same protocol: identical results,
        // no thread machinery. This is also the shape the equivalence
        // tests pin the threaded path against.
        for &barrier in barriers {
            let mut max_clock = SimTime::ZERO;
            for p in parts.iter_mut() {
                p.advance(barrier);
                max_clock = max_clock.max(p.clock());
            }
            trace.rounds.push(WindowRound { barrier, max_clock });
        }
        for p in parts.iter_mut() {
            p.drain();
        }
        return trace;
    }

    // Round-robin ownership: thread t runs partitions t, t+threads, ….
    // Each group is a disjoint &mut slice-of-slices view built once.
    let mut groups: Vec<Vec<&mut P>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, p) in parts.iter_mut().enumerate() {
        if let Some(group) = groups.get_mut(i % threads) {
            group.push(p);
        }
    }
    let sync = Barrier::new(threads);
    let clocks: Vec<Vec<SimTime>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for group in groups.into_iter() {
            let sync = &sync;
            handles.push(scope.spawn(move || {
                let mut group = group;
                // Per-round high-water mark of this group's clocks,
                // reported back for the global trace.
                let mut highs = Vec::with_capacity(barriers.len());
                for &barrier in barriers {
                    let mut max_clock = SimTime::ZERO;
                    for p in group.iter_mut() {
                        p.advance(barrier);
                        max_clock = max_clock.max(p.clock());
                    }
                    highs.push(max_clock);
                    // No thread enters the next window until every
                    // thread finished this one — the conservative
                    // synchronization point.
                    sync.wait();
                }
                for p in group.iter_mut() {
                    p.drain();
                }
                highs
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(highs) => highs,
                // A worker panic is the partition's own bug; surface it
                // on the caller's thread with the original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    for (round, &barrier) in barriers.iter().enumerate() {
        let max_clock = clocks
            .iter()
            .filter_map(|highs| highs.get(round).copied())
            .max()
            .unwrap_or(SimTime::ZERO);
        trace.rounds.push(WindowRound { barrier, max_clock });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Scheduler, World};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// A toy partition: injections are (time, value) pairs; each handled
    /// event records itself and schedules an echo 0.25s later.
    struct Echo {
        injections: Vec<(SimTime, u32)>,
        cursor: usize,
        submitted_high: SimTime,
        sched: Scheduler<u32>,
        world: EchoWorld,
    }

    #[derive(Default)]
    struct EchoWorld {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for EchoWorld {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
            if ev < 100 {
                sched.schedule_in(SimTime::from_secs(0.25), ev + 100);
            }
        }
    }

    impl Echo {
        fn new(injections: Vec<(SimTime, u32)>) -> Echo {
            Echo {
                injections,
                cursor: 0,
                submitted_high: SimTime::ZERO,
                sched: Scheduler::new(),
                world: EchoWorld::default(),
            }
        }
    }

    impl WindowPartition for Echo {
        fn advance(&mut self, barrier: SimTime) {
            while let Some(&(at, v)) = self.injections.get(self.cursor) {
                if at >= barrier {
                    break;
                }
                self.sched.schedule_at(at, v);
                self.submitted_high = self.submitted_high.max(at);
                self.cursor += 1;
            }
            self.sched
                .run_bounded(&mut self.world, self.submitted_high, u64::MAX);
        }

        fn drain(&mut self) {
            while let Some(&(at, v)) = self.injections.get(self.cursor) {
                self.sched.schedule_at(at, v);
                self.cursor += 1;
            }
            self.sched.run(&mut self.world);
        }

        fn clock(&self) -> SimTime {
            self.sched.now()
        }
    }

    fn fixture(nparts: usize, n: usize) -> (Vec<Echo>, Vec<SimTime>) {
        // A strictly increasing global injection stream, fanned out
        // round-robin to partitions.
        let times: Vec<SimTime> = (0..n).map(|i| t(1.0 + i as f64 * 0.7)).collect();
        let mut parts: Vec<Vec<(SimTime, u32)>> = vec![Vec::new(); nparts];
        for (i, &at) in times.iter().enumerate() {
            parts[i % nparts].push((at, i as u32));
        }
        (parts.into_iter().map(Echo::new).collect(), times)
    }

    #[test]
    fn windows_are_conservative_and_complete() {
        let (mut parts, times) = fixture(3, 20);
        let barriers = window_barriers(&times, 4);
        assert_eq!(barriers.len(), 4, "20 injections / chunk 4 = 4 barriers");
        let trace = run_windowed(&mut parts, &barriers, 3);
        assert_eq!(trace.rounds.len(), barriers.len());
        assert!(trace.is_conservative(), "{:?}", trace.rounds);
        let handled: usize = parts.iter().map(|p| p.world.seen.len()).sum();
        // Every injection plus one echo each.
        assert_eq!(handled, 40);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let runs: Vec<Vec<Vec<(SimTime, u32)>>> = [1usize, 2, 3, 8]
            .iter()
            .map(|&threads| {
                let (mut parts, times) = fixture(3, 17);
                let barriers = window_barriers(&times, 5);
                run_windowed(&mut parts, &barriers, threads);
                parts.into_iter().map(|p| p.world.seen).collect()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(&runs[0], other, "results depend on thread count");
        }
    }

    #[test]
    fn empty_and_single_chunk_schedules() {
        assert!(window_barriers(&[], 4).is_empty());
        let times = vec![t(1.0), t(2.0)];
        assert!(
            window_barriers(&times, 2).is_empty(),
            "one chunk needs no barrier"
        );
        assert_eq!(window_barriers(&times, 1), vec![t(2.0)]);
        // chunk 0 is clamped to 1 rather than looping forever.
        assert_eq!(window_barriers(&times, 0), vec![t(2.0)]);

        let mut none: Vec<Echo> = Vec::new();
        let trace = run_windowed(&mut none, &[t(1.0)], 4);
        assert!(trace.rounds.is_empty());
    }

    #[test]
    fn repeated_timestamps_never_become_barriers() {
        // A chunk edge landing inside a run of equal times must slide
        // past it: executing up to a barrier equal to a delivered time
        // would let a partition pass an undelivered same-instant
        // injection.
        let times = vec![t(1.0), t(2.0), t(2.0), t(2.0), t(3.0), t(3.0), t(4.0)];
        let barriers = window_barriers(&times, 2);
        assert_eq!(barriers, vec![t(3.0), t(4.0)], "{barriers:?}");
        for w in barriers.windows(2) {
            assert!(w[0] < w[1]);
        }
        // An all-equal stream yields no safe interior barrier at all.
        assert!(window_barriers(&[t(5.0); 6], 2).is_empty());
    }
}
