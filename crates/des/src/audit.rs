//! Invariant auditing over recorded traces.
//!
//! [`TraceAuditor`] replays a [`crate::trace::Tracer`] transcript through a
//! small state machine and checks the physical invariants every legal tape
//! schedule must satisfy:
//!
//! 1. **Monotone time** — events are emitted at non-decreasing timestamps.
//! 2. **Drive exclusivity** — no two transfer windows overlap on one drive.
//! 3. **Robot exclusivity** — no two exchanges overlap on one robot arm of
//!    one library.
//! 4. **Load/unload pairing** — a drive unloads only what it holds, starts
//!    an exchange only while empty, and a mount completes only the
//!    exchange that was begun for it.
//! 5. **Mount-before-read** — a transfer streams only from the tape the
//!    drive currently holds.
//! 6. **Exactly-once service** — every submitted job completes exactly
//!    once, from the tape it was submitted for, and never streams again
//!    after completing.
//! 7. **Causality** — no job's transfer window starts, and no completion
//!    fires, before the job was submitted.
//! 8. **No service on a failed drive** — once a `DriveFailed` records a
//!    failure instant, no transfer or exchange window on that drive may
//!    extend past it (the failure is *noticed* later, so the check runs
//!    over all windows at the end).
//! 9. **No exchange during a jam** — exchange windows avoid every
//!    `RobotJammed` window of their library.
//! 10. **Fault resolution** — every fatal `ReadFaulted` ends in exactly
//!     one `JobLost` or `FailedOver` (whose replacement job is really
//!     submitted); losses and failovers happen only with a fault to blame;
//!     retries stay within the configured cap
//!     ([`TraceAuditor::with_retry_cap`]). Lost or failed-over jobs count
//!     as terminally dispatched, not as never-completed.
//!
//! Batched service is legal: one `Mounted` may be followed by many
//! `Transfer` windows for *different* jobs on the same tape (a single
//! mount amortised over a batch), as long as the windows are disjoint per
//! drive and each job still completes exactly once.
//!
//! The auditor is deliberately independent of the scheduling logic: it
//! never consults the simulator's data structures, only the trace. A bug
//! that corrupts both the schedule and the metrics in a consistent way
//! still trips here as long as the emitted intervals disagree with
//! physical reality.

use crate::time::SimTime;
use crate::trace::{DriveKey, TapeKey, TraceEntry, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;

/// Slack for comparing interval endpoints, absorbing floating-point
/// rounding in back-to-back schedules (seconds).
const EPSILON: f64 = 1e-9;

/// One invariant breach, anchored to the trace entry that revealed it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index into the audited entry slice.
    pub index: usize,
    /// Timestamp of the offending entry.
    pub time: SimTime,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// The invariant families a trace can breach.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// Entry timestamp went backwards relative to its predecessor.
    TimeWentBackwards { previous: SimTime },
    /// Two transfer windows overlap on one drive.
    DriveOverlap {
        drive: DriveKey,
        first_finish: SimTime,
        second_start: SimTime,
    },
    /// Two exchanges overlap on one robot arm.
    RobotOverlap {
        library: u16,
        arm: u32,
        first_finish: SimTime,
        second_start: SimTime,
    },
    /// A drive unloaded a tape it did not hold.
    UnmountMismatch {
        drive: DriveKey,
        claimed: TapeKey,
        actual: Option<TapeKey>,
    },
    /// An exchange began while the drive still held a tape.
    ExchangeWhileMounted { drive: DriveKey, held: TapeKey },
    /// A mount completed with no matching exchange begun.
    MountWithoutExchange {
        drive: DriveKey,
        tape: TapeKey,
        expected: Option<TapeKey>,
    },
    /// A drive was declared pre-mounted while already holding a tape.
    DuplicateAssume { drive: DriveKey },
    /// A transfer streamed from a tape the drive did not hold.
    ReadWithoutMount {
        drive: DriveKey,
        tape: TapeKey,
        held: Option<TapeKey>,
    },
    /// An interval event finished before it started.
    NegativeInterval { start: SimTime, finish: SimTime },
    /// The same job index was submitted twice.
    DuplicateSubmit { job: u32 },
    /// A transfer or completion referenced a job never submitted.
    UnknownJob { job: u32 },
    /// A transfer streamed a job from a different tape than submitted.
    WrongTapeForJob {
        job: u32,
        submitted: TapeKey,
        streamed: TapeKey,
    },
    /// A job completed more than once.
    CompletedTwice { job: u32 },
    /// A job's service (transfer start or completion) preceded its
    /// submission.
    ServedBeforeSubmit {
        job: u32,
        submitted: SimTime,
        start: SimTime,
    },
    /// A job streamed again after already completing.
    TransferAfterCompletion { job: u32 },
    /// Submitted jobs never completed by the end of the trace.
    NeverCompleted { jobs: Vec<u32> },
    /// A transfer or exchange window on a drive extends past the drive's
    /// recorded failure instant.
    ServiceOnFailedDrive {
        drive: DriveKey,
        failed_at: SimTime,
        finish: SimTime,
    },
    /// An exchange window overlaps a robot jam window of its library.
    ExchangeDuringJam {
        library: u16,
        arm: u32,
        start: SimTime,
    },
    /// A read burned more retries than the configured budget allows.
    RetriesExceeded { job: u32, retries: u32, cap: u32 },
    /// A job was declared lost or failed over without any fault (a fatal
    /// read on that job, or a drive failure) to justify it.
    ResolvedWithoutFault { job: u32 },
    /// A fatal read fault was never resolved by a loss or a failover.
    UnresolvedFault { job: u32 },
    /// A failover named a replacement job that was never submitted.
    FailoverWithoutSubmit { job: u32, replacement: u32 },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entry {} at {}: ", self.index, self.time)?;
        match &self.kind {
            ViolationKind::TimeWentBackwards { previous } => {
                write!(f, "time went backwards (previous entry at {previous})")
            }
            ViolationKind::DriveOverlap {
                drive,
                first_finish,
                second_start,
            } => write!(
                f,
                "overlapping transfers on {drive}: one runs until {first_finish}, \
                 the next starts at {second_start}"
            ),
            ViolationKind::RobotOverlap {
                library,
                arm,
                first_finish,
                second_start,
            } => write!(
                f,
                "overlapping exchanges on L{library} arm {arm}: one runs until \
                 {first_finish}, the next starts at {second_start}"
            ),
            ViolationKind::UnmountMismatch {
                drive,
                claimed,
                actual,
            } => match actual {
                Some(held) => write!(f, "{drive} unloads {claimed} but holds {held}"),
                None => write!(f, "{drive} unloads {claimed} but holds nothing"),
            },
            ViolationKind::ExchangeWhileMounted { drive, held } => {
                write!(f, "{drive} begins an exchange while still holding {held}")
            }
            ViolationKind::MountWithoutExchange {
                drive,
                tape,
                expected,
            } => match expected {
                Some(e) => write!(
                    f,
                    "{drive} mounted {tape} but the pending exchange was for {e}"
                ),
                None => write!(f, "{drive} mounted {tape} with no exchange begun"),
            },
            ViolationKind::DuplicateAssume { drive } => {
                write!(f, "{drive} declared pre-mounted twice")
            }
            ViolationKind::ReadWithoutMount { drive, tape, held } => match held {
                Some(h) => write!(f, "{drive} streams from {tape} but holds {h}"),
                None => write!(f, "{drive} streams from {tape} but holds nothing"),
            },
            ViolationKind::NegativeInterval { start, finish } => {
                write!(f, "interval finishes at {finish}, before its start {start}")
            }
            ViolationKind::DuplicateSubmit { job } => {
                write!(f, "job {job} submitted twice")
            }
            ViolationKind::UnknownJob { job } => {
                write!(f, "job {job} referenced but never submitted")
            }
            ViolationKind::WrongTapeForJob {
                job,
                submitted,
                streamed,
            } => write!(
                f,
                "job {job} was submitted for {submitted} but streamed from {streamed}"
            ),
            ViolationKind::CompletedTwice { job } => {
                write!(f, "job {job} completed twice")
            }
            ViolationKind::ServedBeforeSubmit {
                job,
                submitted,
                start,
            } => write!(
                f,
                "job {job} served from {start}, before its submission at {submitted}"
            ),
            ViolationKind::TransferAfterCompletion { job } => {
                write!(f, "job {job} streamed again after completing")
            }
            ViolationKind::NeverCompleted { jobs } => {
                write!(f, "submitted jobs never completed: {jobs:?}")
            }
            ViolationKind::ServiceOnFailedDrive {
                drive,
                failed_at,
                finish,
            } => write!(
                f,
                "{drive} failed at {failed_at} but a window on it runs until {finish}"
            ),
            ViolationKind::ExchangeDuringJam {
                library,
                arm,
                start,
            } => write!(
                f,
                "exchange on L{library} arm {arm} starting {start} overlaps a robot jam"
            ),
            ViolationKind::RetriesExceeded { job, retries, cap } => {
                write!(f, "job {job} burned {retries} retries (budget {cap})")
            }
            ViolationKind::ResolvedWithoutFault { job } => {
                write!(f, "job {job} lost or failed over with no fault to blame")
            }
            ViolationKind::UnresolvedFault { job } => {
                write!(f, "job {job} hit a fatal read fault but was never resolved")
            }
            ViolationKind::FailoverWithoutSubmit { job, replacement } => write!(
                f,
                "job {job} failed over to job {replacement}, which was never submitted"
            ),
        }
    }
}

/// Summary of one audit pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Number of entries examined.
    pub entries: usize,
    /// Number of distinct jobs submitted in the trace.
    pub jobs: usize,
    /// Number of transfer windows checked for drive exclusivity.
    pub transfers: usize,
    /// Number of exchanges checked for robot exclusivity.
    pub exchanges: usize,
    /// Number of read-fault events seen.
    pub faults: usize,
    /// Number of jobs declared terminally lost.
    pub losses: usize,
    /// Number of failovers to replica jobs.
    pub failovers: usize,
    /// Every breach found, in trace order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the trace satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audited {} entries ({} jobs, {} transfers, {} exchanges): {}",
            self.entries,
            self.jobs,
            self.transfers,
            self.exchanges,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Replays traces and reports invariant breaches.
///
/// Stateless between calls; construct once and [`audit`](Self::audit) any
/// number of traces. A trace must cover one contiguous stretch of one
/// clock: either a single per-request service (the per-request clock
/// restarts at zero, so entries from different requests must not be
/// concatenated into one audit) or one whole scheduled run in which jobs
/// are submitted on arrival and served in batches.
#[derive(Debug, Default, Clone)]
pub struct TraceAuditor {
    /// When set, `ReadFaulted` events burning more retries than this are
    /// flagged ([`ViolationKind::RetriesExceeded`]). The auditor cannot
    /// know the fault model's budget from the trace alone, so the runner
    /// passes it in.
    retry_cap: Option<u32>,
}

impl TraceAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        TraceAuditor::default()
    }

    /// Enforces the per-job retry budget on `ReadFaulted` events.
    pub fn with_retry_cap(mut self, cap: u32) -> Self {
        self.retry_cap = Some(cap);
        self
    }

    /// Checks `entries` against every invariant and reports all breaches.
    pub fn audit(&self, entries: &[TraceEntry]) -> AuditReport {
        let mut report = AuditReport {
            entries: entries.len(),
            ..AuditReport::default()
        };
        let mut mounted: BTreeMap<DriveKey, TapeKey> = BTreeMap::new();
        let mut pending_exchange: BTreeMap<DriveKey, TapeKey> = BTreeMap::new();
        // Per job: the tape it was submitted for and the submit timestamp.
        let mut submitted: BTreeMap<u32, (TapeKey, SimTime)> = BTreeMap::new();
        // Per job: the completion timestamp.
        let mut completed: BTreeMap<u32, SimTime> = BTreeMap::new();
        // Busy intervals, keyed by drive / (library, arm).
        let mut drive_windows: BTreeMap<DriveKey, Vec<Window>> = BTreeMap::new();
        let mut arm_windows: BTreeMap<(u16, u32), Vec<Window>> = BTreeMap::new();
        // Exchange windows per drive (for the failed-drive check; the
        // arm-keyed map above loses the drive).
        let mut drive_exchanges: BTreeMap<DriveKey, Vec<Window>> = BTreeMap::new();
        // Fault bookkeeping.
        let mut failed_drives: BTreeMap<DriveKey, SimTime> = BTreeMap::new();
        let mut jam_windows: BTreeMap<u16, Vec<(SimTime, SimTime)>> = BTreeMap::new();
        let mut fatal_faults: BTreeMap<u32, SimTime> = BTreeMap::new();
        // Per job: the instant it was terminally resolved (lost or
        // failed over).
        let mut resolved: BTreeMap<u32, SimTime> = BTreeMap::new();
        let mut failover_edges: Vec<(usize, SimTime, u32, u32)> = Vec::new();
        let mut prev_time = SimTime::ZERO;

        for (index, entry) in entries.iter().enumerate() {
            let flag = |sink: &mut Vec<Violation>, kind: ViolationKind| {
                sink.push(Violation {
                    index,
                    time: entry.time,
                    kind,
                });
            };

            if entry.time < prev_time {
                flag(
                    &mut report.violations,
                    ViolationKind::TimeWentBackwards {
                        previous: prev_time,
                    },
                );
            }
            prev_time = prev_time.max(entry.time);

            match entry.event {
                TraceEvent::AssumeMounted { drive, tape } => {
                    if mounted.contains_key(&drive) {
                        flag(
                            &mut report.violations,
                            ViolationKind::DuplicateAssume { drive },
                        );
                    }
                    mounted.insert(drive, tape);
                }
                TraceEvent::JobSubmitted { job, tape } => {
                    if submitted.insert(job, (tape, entry.time)).is_some() {
                        flag(
                            &mut report.violations,
                            ViolationKind::DuplicateSubmit { job },
                        );
                    }
                }
                TraceEvent::Unmounted { drive, tape } => {
                    let actual = mounted.remove(&drive);
                    if actual != Some(tape) {
                        flag(
                            &mut report.violations,
                            ViolationKind::UnmountMismatch {
                                drive,
                                claimed: tape,
                                actual,
                            },
                        );
                    }
                }
                TraceEvent::ExchangeBegun {
                    drive,
                    tape,
                    arm,
                    start,
                    finish,
                } => {
                    report.exchanges += 1;
                    if let Some(&held) = mounted.get(&drive) {
                        flag(
                            &mut report.violations,
                            ViolationKind::ExchangeWhileMounted { drive, held },
                        );
                    }
                    if finish < start {
                        flag(
                            &mut report.violations,
                            ViolationKind::NegativeInterval { start, finish },
                        );
                    }
                    pending_exchange.insert(drive, tape);
                    arm_windows
                        .entry((drive.library(), arm))
                        .or_default()
                        .push((index, start, finish));
                    drive_exchanges
                        .entry(drive)
                        .or_default()
                        .push((index, start, finish));
                }
                TraceEvent::Mounted { drive, tape } => {
                    let expected = pending_exchange.remove(&drive);
                    if expected != Some(tape) {
                        flag(
                            &mut report.violations,
                            ViolationKind::MountWithoutExchange {
                                drive,
                                tape,
                                expected,
                            },
                        );
                    }
                    mounted.insert(drive, tape);
                }
                TraceEvent::Transfer {
                    drive,
                    tape,
                    job,
                    start,
                    finish,
                    ..
                } => {
                    report.transfers += 1;
                    let held = mounted.get(&drive).copied();
                    if held != Some(tape) {
                        flag(
                            &mut report.violations,
                            ViolationKind::ReadWithoutMount { drive, tape, held },
                        );
                    }
                    if finish < start {
                        flag(
                            &mut report.violations,
                            ViolationKind::NegativeInterval { start, finish },
                        );
                    }
                    let eps = SimTime::from_secs(EPSILON);
                    match submitted.get(&job) {
                        None => flag(&mut report.violations, ViolationKind::UnknownJob { job }),
                        Some(&(sub, _)) if sub != tape => flag(
                            &mut report.violations,
                            ViolationKind::WrongTapeForJob {
                                job,
                                submitted: sub,
                                streamed: tape,
                            },
                        ),
                        Some(&(_, at)) if start + eps < at => flag(
                            &mut report.violations,
                            ViolationKind::ServedBeforeSubmit {
                                job,
                                submitted: at,
                                start,
                            },
                        ),
                        Some(_) => {}
                    }
                    if completed.contains_key(&job) || resolved.contains_key(&job) {
                        flag(
                            &mut report.violations,
                            ViolationKind::TransferAfterCompletion { job },
                        );
                    }
                    drive_windows
                        .entry(drive)
                        .or_default()
                        .push((index, start, finish));
                }
                TraceEvent::JobCompleted { job, .. } => {
                    let eps = SimTime::from_secs(EPSILON);
                    match submitted.get(&job) {
                        None => flag(&mut report.violations, ViolationKind::UnknownJob { job }),
                        Some(&(_, at)) if entry.time + eps < at => flag(
                            &mut report.violations,
                            ViolationKind::ServedBeforeSubmit {
                                job,
                                submitted: at,
                                start: entry.time,
                            },
                        ),
                        Some(_) => {}
                    }
                    if completed.insert(job, entry.time).is_some() || resolved.contains_key(&job) {
                        flag(
                            &mut report.violations,
                            ViolationKind::CompletedTwice { job },
                        );
                    }
                }
                TraceEvent::DriveFailed { drive, at } => {
                    failed_drives.entry(drive).or_insert(at);
                }
                TraceEvent::RobotJammed {
                    library,
                    start,
                    finish,
                } => {
                    if finish < start {
                        flag(
                            &mut report.violations,
                            ViolationKind::NegativeInterval { start, finish },
                        );
                    }
                    jam_windows
                        .entry(library as u16)
                        .or_default()
                        .push((start, finish));
                }
                TraceEvent::ReadFaulted {
                    job,
                    retries,
                    fatal,
                    ..
                } => {
                    report.faults += 1;
                    if !submitted.contains_key(&job) {
                        flag(&mut report.violations, ViolationKind::UnknownJob { job });
                    }
                    if let Some(cap) = self.retry_cap {
                        if retries > cap {
                            flag(
                                &mut report.violations,
                                ViolationKind::RetriesExceeded { job, retries, cap },
                            );
                        }
                    }
                    if fatal {
                        fatal_faults.entry(job).or_insert(entry.time);
                    }
                }
                TraceEvent::JobLost { job } | TraceEvent::FailedOver { job, .. } => {
                    if let TraceEvent::JobLost { .. } = entry.event {
                        report.losses += 1;
                    } else {
                        report.failovers += 1;
                    }
                    if !submitted.contains_key(&job) {
                        flag(&mut report.violations, ViolationKind::UnknownJob { job });
                    }
                    // A terminal resolution needs a fault to blame: a
                    // fatal read on this job, or a drive failure (jobs
                    // stranded by dead drives carry no read fault).
                    if !fatal_faults.contains_key(&job) && failed_drives.is_empty() {
                        flag(
                            &mut report.violations,
                            ViolationKind::ResolvedWithoutFault { job },
                        );
                    }
                    if completed.contains_key(&job) || resolved.insert(job, entry.time).is_some() {
                        flag(
                            &mut report.violations,
                            ViolationKind::CompletedTwice { job },
                        );
                    }
                    if let TraceEvent::FailedOver { job, replacement } = entry.event {
                        failover_edges.push((index, entry.time, job, replacement));
                    }
                }
            }
        }

        report.jobs = submitted.len();

        // Exclusivity: sort each resource's windows by start and flag any
        // window that begins before its predecessor ends (minus epsilon).
        for (drive, windows) in &mut drive_windows {
            for (index, finish, start) in overlaps(windows) {
                report.violations.push(Violation {
                    index,
                    time: start,
                    kind: ViolationKind::DriveOverlap {
                        drive: *drive,
                        first_finish: finish,
                        second_start: start,
                    },
                });
            }
        }
        for ((library, arm), windows) in &mut arm_windows {
            for (index, finish, start) in overlaps(windows) {
                report.violations.push(Violation {
                    index,
                    time: start,
                    kind: ViolationKind::RobotOverlap {
                        library: *library,
                        arm: *arm,
                        first_finish: finish,
                        second_start: start,
                    },
                });
            }
        }

        // No service on a failed drive: the failure is noticed after the
        // fact, so every window of a failed drive is checked here.
        let eps = SimTime::from_secs(EPSILON);
        for (&drive, &failed_at) in &failed_drives {
            let windows = [drive_windows.get(&drive), drive_exchanges.get(&drive)];
            for &(index, _, finish) in windows.into_iter().flatten().flatten() {
                if finish > failed_at + eps {
                    report.violations.push(Violation {
                        index,
                        time: finish,
                        kind: ViolationKind::ServiceOnFailedDrive {
                            drive,
                            failed_at,
                            finish,
                        },
                    });
                }
            }
        }

        // No exchange during a robot jam of its library.
        for (&(library, arm), windows) in &arm_windows {
            let Some(jams) = jam_windows.get(&library) else {
                continue;
            };
            for &(index, start, finish) in windows.iter() {
                let overlaps_jam = jams
                    .iter()
                    .any(|&(js, jf)| start + eps < jf && js + eps < finish);
                if overlaps_jam {
                    report.violations.push(Violation {
                        index,
                        time: start,
                        kind: ViolationKind::ExchangeDuringJam {
                            library,
                            arm,
                            start,
                        },
                    });
                }
            }
        }

        // Every fatal fault ends in a loss or a failover.
        for (&job, &at) in &fatal_faults {
            if !resolved.contains_key(&job) && !completed.contains_key(&job) {
                report.violations.push(Violation {
                    index: entries.len().saturating_sub(1),
                    time: at,
                    kind: ViolationKind::UnresolvedFault { job },
                });
            }
        }

        // Every failover's replacement job really exists.
        for &(index, time, job, replacement) in &failover_edges {
            if !submitted.contains_key(&replacement) {
                report.violations.push(Violation {
                    index,
                    time,
                    kind: ViolationKind::FailoverWithoutSubmit { job, replacement },
                });
            }
        }

        // Exactly-once service: whatever was submitted must have completed
        // or been terminally resolved (lost / failed over).
        let unserved: Vec<u32> = submitted
            .keys()
            .filter(|j| !completed.contains_key(j) && !resolved.contains_key(j))
            .copied()
            .collect();
        if !unserved.is_empty() {
            report.violations.push(Violation {
                index: entries.len().saturating_sub(1),
                time: prev_time,
                kind: ViolationKind::NeverCompleted { jobs: unserved },
            });
        }

        report.violations.sort_by_key(|v| v.index);
        report
    }
}

impl TraceAuditor {
    /// Begins a streaming audit: feed entries one at a time with
    /// [`AuditStream::push`] as the simulation emits them, then collect
    /// the verdict with [`AuditStream::finish`]. Produces exactly the
    /// report [`TraceAuditor::audit`] would on the same entry sequence
    /// (the equivalence is pinned by proptest), without the caller ever
    /// materialising a trace `Vec`.
    pub fn stream(&self) -> AuditStream {
        AuditStream {
            retry_cap: self.retry_cap,
            ..AuditStream::default()
        }
    }
}

/// An in-flight streaming audit (see [`TraceAuditor::stream`]).
///
/// The batch path buffers every [`TraceEntry`] — event payload included —
/// and replays the buffer at the end. This consumes entries online and
/// keeps only the audit state itself: per-entity maps that grow with
/// *active* entities (mounted drives, pending exchanges, per-job
/// lifecycle facts) plus compact per-resource busy-window triples.
///
/// The windows are the irreducible part: drive/robot exclusivity is
/// defined on *start-sorted adjacent pairs* over the whole run, and a
/// `DriveFailed` may arrive after the fact with a failure instant in the
/// past, indicting windows streamed long before. Both checks are
/// inherently end-of-trace, so the `(index, start, finish)` triples are
/// retained — but never the entries that produced them.
#[derive(Debug, Default)]
pub struct AuditStream {
    retry_cap: Option<u32>,
    /// Index the next pushed entry will get (= entries seen so far).
    index: usize,
    prev_time: SimTime,
    /// Counters and inline violations accumulate here as entries arrive;
    /// [`AuditStream::finish`] appends the end-of-trace passes.
    report: AuditReport,
    mounted: BTreeMap<DriveKey, TapeKey>,
    pending_exchange: BTreeMap<DriveKey, TapeKey>,
    submitted: BTreeMap<u32, (TapeKey, SimTime)>,
    completed: BTreeMap<u32, SimTime>,
    resolved: BTreeMap<u32, SimTime>,
    drive_windows: BTreeMap<DriveKey, Vec<Window>>,
    arm_windows: BTreeMap<(u16, u32), Vec<Window>>,
    drive_exchanges: BTreeMap<DriveKey, Vec<Window>>,
    failed_drives: BTreeMap<DriveKey, SimTime>,
    jam_windows: BTreeMap<u16, Vec<(SimTime, SimTime)>>,
    fatal_faults: BTreeMap<u32, SimTime>,
    failover_edges: Vec<(usize, SimTime, u32, u32)>,
}

impl AuditStream {
    /// Consumes one trace entry, checking every inline invariant.
    pub fn push(&mut self, entry: &TraceEntry) {
        let index = self.index;
        self.index += 1;
        let flag = |sink: &mut Vec<Violation>, kind: ViolationKind| {
            sink.push(Violation {
                index,
                time: entry.time,
                kind,
            });
        };

        if entry.time < self.prev_time {
            flag(
                &mut self.report.violations,
                ViolationKind::TimeWentBackwards {
                    previous: self.prev_time,
                },
            );
        }
        self.prev_time = self.prev_time.max(entry.time);

        match entry.event {
            TraceEvent::AssumeMounted { drive, tape } => {
                if self.mounted.contains_key(&drive) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::DuplicateAssume { drive },
                    );
                }
                self.mounted.insert(drive, tape);
            }
            TraceEvent::JobSubmitted { job, tape } => {
                if self.submitted.insert(job, (tape, entry.time)).is_some() {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::DuplicateSubmit { job },
                    );
                }
            }
            TraceEvent::Unmounted { drive, tape } => {
                let actual = self.mounted.remove(&drive);
                if actual != Some(tape) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::UnmountMismatch {
                            drive,
                            claimed: tape,
                            actual,
                        },
                    );
                }
            }
            TraceEvent::ExchangeBegun {
                drive,
                tape,
                arm,
                start,
                finish,
            } => {
                self.report.exchanges += 1;
                if let Some(&held) = self.mounted.get(&drive) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::ExchangeWhileMounted { drive, held },
                    );
                }
                if finish < start {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::NegativeInterval { start, finish },
                    );
                }
                self.pending_exchange.insert(drive, tape);
                self.arm_windows
                    .entry((drive.library(), arm))
                    .or_default()
                    .push((index, start, finish));
                self.drive_exchanges
                    .entry(drive)
                    .or_default()
                    .push((index, start, finish));
            }
            TraceEvent::Mounted { drive, tape } => {
                let expected = self.pending_exchange.remove(&drive);
                if expected != Some(tape) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::MountWithoutExchange {
                            drive,
                            tape,
                            expected,
                        },
                    );
                }
                self.mounted.insert(drive, tape);
            }
            TraceEvent::Transfer {
                drive,
                tape,
                job,
                start,
                finish,
                ..
            } => {
                self.report.transfers += 1;
                let held = self.mounted.get(&drive).copied();
                if held != Some(tape) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::ReadWithoutMount { drive, tape, held },
                    );
                }
                if finish < start {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::NegativeInterval { start, finish },
                    );
                }
                let eps = SimTime::from_secs(EPSILON);
                match self.submitted.get(&job) {
                    None => flag(
                        &mut self.report.violations,
                        ViolationKind::UnknownJob { job },
                    ),
                    Some(&(sub, _)) if sub != tape => flag(
                        &mut self.report.violations,
                        ViolationKind::WrongTapeForJob {
                            job,
                            submitted: sub,
                            streamed: tape,
                        },
                    ),
                    Some(&(_, at)) if start + eps < at => flag(
                        &mut self.report.violations,
                        ViolationKind::ServedBeforeSubmit {
                            job,
                            submitted: at,
                            start,
                        },
                    ),
                    Some(_) => {}
                }
                if self.completed.contains_key(&job) || self.resolved.contains_key(&job) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::TransferAfterCompletion { job },
                    );
                }
                self.drive_windows
                    .entry(drive)
                    .or_default()
                    .push((index, start, finish));
            }
            TraceEvent::JobCompleted { job, .. } => {
                let eps = SimTime::from_secs(EPSILON);
                match self.submitted.get(&job) {
                    None => flag(
                        &mut self.report.violations,
                        ViolationKind::UnknownJob { job },
                    ),
                    Some(&(_, at)) if entry.time + eps < at => flag(
                        &mut self.report.violations,
                        ViolationKind::ServedBeforeSubmit {
                            job,
                            submitted: at,
                            start: entry.time,
                        },
                    ),
                    Some(_) => {}
                }
                if self.completed.insert(job, entry.time).is_some()
                    || self.resolved.contains_key(&job)
                {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::CompletedTwice { job },
                    );
                }
            }
            TraceEvent::DriveFailed { drive, at } => {
                self.failed_drives.entry(drive).or_insert(at);
            }
            TraceEvent::RobotJammed {
                library,
                start,
                finish,
            } => {
                if finish < start {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::NegativeInterval { start, finish },
                    );
                }
                self.jam_windows
                    .entry(library as u16)
                    .or_default()
                    .push((start, finish));
            }
            TraceEvent::ReadFaulted {
                job,
                retries,
                fatal,
                ..
            } => {
                self.report.faults += 1;
                if !self.submitted.contains_key(&job) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::UnknownJob { job },
                    );
                }
                if let Some(cap) = self.retry_cap {
                    if retries > cap {
                        flag(
                            &mut self.report.violations,
                            ViolationKind::RetriesExceeded { job, retries, cap },
                        );
                    }
                }
                if fatal {
                    self.fatal_faults.entry(job).or_insert(entry.time);
                }
            }
            TraceEvent::JobLost { job } | TraceEvent::FailedOver { job, .. } => {
                if let TraceEvent::JobLost { .. } = entry.event {
                    self.report.losses += 1;
                } else {
                    self.report.failovers += 1;
                }
                if !self.submitted.contains_key(&job) {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::UnknownJob { job },
                    );
                }
                if !self.fatal_faults.contains_key(&job) && self.failed_drives.is_empty() {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::ResolvedWithoutFault { job },
                    );
                }
                if self.completed.contains_key(&job)
                    || self.resolved.insert(job, entry.time).is_some()
                {
                    flag(
                        &mut self.report.violations,
                        ViolationKind::CompletedTwice { job },
                    );
                }
                if let TraceEvent::FailedOver { job, replacement } = entry.event {
                    self.failover_edges
                        .push((index, entry.time, job, replacement));
                }
            }
        }
    }

    /// Consumes every entry of `entries` in order.
    pub fn push_all(&mut self, entries: &[TraceEntry]) {
        for entry in entries {
            self.push(entry);
        }
    }

    /// Runs the end-of-trace passes (exclusivity, failed-drive forensics,
    /// jam overlap, fault-resolution accounting, exactly-once service)
    /// and returns the complete report — identical to what
    /// [`TraceAuditor::audit`] produces on the same entries, end-pass
    /// order and final index sort included.
    pub fn finish(mut self) -> AuditReport {
        let mut report = self.report;
        report.entries = self.index;
        report.jobs = self.submitted.len();

        for (drive, windows) in &mut self.drive_windows {
            for (index, finish, start) in overlaps(windows) {
                report.violations.push(Violation {
                    index,
                    time: start,
                    kind: ViolationKind::DriveOverlap {
                        drive: *drive,
                        first_finish: finish,
                        second_start: start,
                    },
                });
            }
        }
        for ((library, arm), windows) in &mut self.arm_windows {
            for (index, finish, start) in overlaps(windows) {
                report.violations.push(Violation {
                    index,
                    time: start,
                    kind: ViolationKind::RobotOverlap {
                        library: *library,
                        arm: *arm,
                        first_finish: finish,
                        second_start: start,
                    },
                });
            }
        }

        let eps = SimTime::from_secs(EPSILON);
        for (&drive, &failed_at) in &self.failed_drives {
            let windows = [
                self.drive_windows.get(&drive),
                self.drive_exchanges.get(&drive),
            ];
            for &(index, _, finish) in windows.into_iter().flatten().flatten() {
                if finish > failed_at + eps {
                    report.violations.push(Violation {
                        index,
                        time: finish,
                        kind: ViolationKind::ServiceOnFailedDrive {
                            drive,
                            failed_at,
                            finish,
                        },
                    });
                }
            }
        }

        for (&(library, arm), windows) in &self.arm_windows {
            let Some(jams) = self.jam_windows.get(&library) else {
                continue;
            };
            for &(index, start, finish) in windows.iter() {
                let overlaps_jam = jams
                    .iter()
                    .any(|&(js, jf)| start + eps < jf && js + eps < finish);
                if overlaps_jam {
                    report.violations.push(Violation {
                        index,
                        time: start,
                        kind: ViolationKind::ExchangeDuringJam {
                            library,
                            arm,
                            start,
                        },
                    });
                }
            }
        }

        for (&job, &at) in &self.fatal_faults {
            if !self.resolved.contains_key(&job) && !self.completed.contains_key(&job) {
                report.violations.push(Violation {
                    index: self.index.saturating_sub(1),
                    time: at,
                    kind: ViolationKind::UnresolvedFault { job },
                });
            }
        }

        for &(index, time, job, replacement) in &self.failover_edges {
            if !self.submitted.contains_key(&replacement) {
                report.violations.push(Violation {
                    index,
                    time,
                    kind: ViolationKind::FailoverWithoutSubmit { job, replacement },
                });
            }
        }

        let unserved: Vec<u32> = self
            .submitted
            .keys()
            .filter(|j| !self.completed.contains_key(j) && !self.resolved.contains_key(j))
            .copied()
            .collect();
        if !unserved.is_empty() {
            report.violations.push(Violation {
                index: self.index.saturating_sub(1),
                time: self.prev_time,
                kind: ViolationKind::NeverCompleted { jobs: unserved },
            });
        }

        report.violations.sort_by_key(|v| v.index);
        report
    }
}

/// A busy window: the emitting entry's index plus `[start, finish]`.
type Window = (usize, SimTime, SimTime);

/// Sorts `windows` by start time and yields `(entry index, previous
/// finish, this start)` for every pair of consecutive windows that
/// overlap by more than [`EPSILON`].
fn overlaps(windows: &mut [Window]) -> Vec<Window> {
    windows.sort_by_key(|w| w.1);
    let eps = SimTime::from_secs(EPSILON);
    let mut found = Vec::new();
    for (&(_, _, prev_finish), &(index, start, _)) in windows.iter().zip(windows.iter().skip(1)) {
        if start + eps < prev_finish {
            found.push((index, prev_finish, start));
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn entry(secs: f64, event: TraceEvent) -> TraceEntry {
        TraceEntry {
            time: t(secs),
            event,
        }
    }

    const D0: DriveKey = DriveKey(0);
    const D1: DriveKey = DriveKey(1);
    const TAPE_A: TapeKey = TapeKey(5);
    const TAPE_B: TapeKey = TapeKey(6);

    fn transfer(secs: f64, drive: DriveKey, tape: TapeKey, job: u32, dur: f64) -> TraceEntry {
        entry(
            secs,
            TraceEvent::Transfer {
                drive,
                tape,
                job,
                extents: 1,
                seek: SimTime::ZERO,
                transfer: t(dur),
                start: t(secs),
                finish: t(secs + dur),
            },
        )
    }

    /// Mount A on D0, stream job 0, switch to B, stream job 1.
    fn valid_trace() -> Vec<TraceEntry> {
        vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_B,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 10.0),
            entry(10.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(
                10.0,
                TraceEvent::Unmounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                10.0,
                TraceEvent::ExchangeBegun {
                    drive: D0,
                    tape: TAPE_B,
                    arm: 0,
                    start: t(12.0),
                    finish: t(40.0),
                },
            ),
            entry(
                40.0,
                TraceEvent::Mounted {
                    drive: D0,
                    tape: TAPE_B,
                },
            ),
            transfer(40.0, D0, TAPE_B, 1, 5.0),
            entry(45.0, TraceEvent::JobCompleted { job: 1, drive: D0 }),
        ]
    }

    #[test]
    fn valid_trace_is_clean() {
        let report = TraceAuditor::new().audit(&valid_trace());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.jobs, 2);
        assert_eq!(report.transfers, 2);
        assert_eq!(report.exchanges, 1);
    }

    #[test]
    fn empty_trace_is_clean() {
        assert!(TraceAuditor::new().audit(&[]).is_clean());
    }

    #[test]
    fn flags_time_going_backwards() {
        let mut trace = valid_trace();
        // Entry 4 (the completion) is emitted at 10.0; pulling entry 5
        // back to 3.0 makes time run backwards.
        trace[5].time = t(3.0);
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::TimeWentBackwards { .. })));
    }

    #[test]
    fn flags_overlapping_transfers_on_one_drive() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 10.0),
            transfer(4.0, D0, TAPE_A, 1, 10.0), // starts inside job 0's window
            entry(10.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(14.0, TraceEvent::JobCompleted { job: 1, drive: D0 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report.violations.iter().any(
                |v| matches!(v.kind, ViolationKind::DriveOverlap { drive, .. } if drive == D0)
            ),
            "{report}"
        );
    }

    #[test]
    fn back_to_back_transfers_are_not_an_overlap() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 10.0),
            entry(10.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            transfer(10.0, D0, TAPE_A, 1, 5.0),
            entry(15.0, TraceEvent::JobCompleted { job: 1, drive: D0 }),
        ];
        assert!(TraceAuditor::new().audit(&trace).is_clean());
    }

    #[test]
    fn flags_overlapping_exchanges_on_one_arm() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_B,
                },
            ),
            entry(
                0.0,
                TraceEvent::ExchangeBegun {
                    drive: D0,
                    tape: TAPE_A,
                    arm: 0,
                    start: t(0.0),
                    finish: t(30.0),
                },
            ),
            entry(
                5.0,
                TraceEvent::ExchangeBegun {
                    drive: D1,
                    tape: TAPE_B,
                    arm: 0, // same arm, overlapping window
                    start: t(5.0),
                    finish: t(35.0),
                },
            ),
            entry(
                30.0,
                TraceEvent::Mounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                35.0,
                TraceEvent::Mounted {
                    drive: D1,
                    tape: TAPE_B,
                },
            ),
            transfer(35.0, D0, TAPE_A, 0, 1.0),
            transfer(35.0, D1, TAPE_B, 1, 1.0),
            entry(36.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(36.0, TraceEvent::JobCompleted { job: 1, drive: D1 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::RobotOverlap { arm: 0, .. })),
            "{report}"
        );
    }

    #[test]
    fn distinct_arms_may_overlap() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_B,
                },
            ),
            entry(
                0.0,
                TraceEvent::ExchangeBegun {
                    drive: D0,
                    tape: TAPE_A,
                    arm: 0,
                    start: t(0.0),
                    finish: t(30.0),
                },
            ),
            entry(
                0.0,
                TraceEvent::ExchangeBegun {
                    drive: D1,
                    tape: TAPE_B,
                    arm: 1,
                    start: t(0.0),
                    finish: t(30.0),
                },
            ),
            entry(
                30.0,
                TraceEvent::Mounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                30.0,
                TraceEvent::Mounted {
                    drive: D1,
                    tape: TAPE_B,
                },
            ),
            transfer(30.0, D0, TAPE_A, 0, 1.0),
            transfer(30.0, D1, TAPE_B, 1, 1.0),
            entry(31.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(31.0, TraceEvent::JobCompleted { job: 1, drive: D1 }),
        ];
        assert!(TraceAuditor::new().audit(&trace).is_clean());
    }

    #[test]
    fn flags_broken_load_unload_pairing() {
        // Unload of a tape the drive does not hold.
        let trace = vec![entry(
            0.0,
            TraceEvent::Unmounted {
                drive: D0,
                tape: TAPE_A,
            },
        )];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::UnmountMismatch { .. })));

        // Exchange begun while the drive still holds a tape.
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::ExchangeBegun {
                    drive: D0,
                    tape: TAPE_B,
                    arm: 0,
                    start: t(0.0),
                    finish: t(30.0),
                },
            ),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::ExchangeWhileMounted { .. })));

        // Mount with no exchange begun.
        let trace = vec![entry(
            0.0,
            TraceEvent::Mounted {
                drive: D0,
                tape: TAPE_A,
            },
        )];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::MountWithoutExchange { .. })));
    }

    #[test]
    fn flags_read_without_mount() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_B,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 1.0), // streams A while holding B
            entry(1.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::ReadWithoutMount { .. })));
    }

    #[test]
    fn flags_double_and_missing_completions() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 1.0),
            entry(1.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(1.0, TraceEvent::JobCompleted { job: 0, drive: D0 }), // again
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::CompletedTwice { job: 0 })));
        assert!(report.violations.iter().any(
            |v| matches!(&v.kind, ViolationKind::NeverCompleted { jobs } if jobs == &vec![1])
        ));
    }

    #[test]
    fn batched_service_is_clean() {
        // One exchange + mount amortised over three jobs submitted at
        // different arrival times: the scheduler's coalescing shape.
        let trace = vec![
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                1.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_A,
                },
            ),
            entry(
                2.0,
                TraceEvent::JobSubmitted {
                    job: 2,
                    tape: TAPE_A,
                },
            ),
            entry(
                2.0,
                TraceEvent::ExchangeBegun {
                    drive: D0,
                    tape: TAPE_A,
                    arm: 0,
                    start: t(2.0),
                    finish: t(30.0),
                },
            ),
            entry(
                30.0,
                TraceEvent::Mounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            transfer(30.0, D0, TAPE_A, 0, 10.0),
            // Emitted when the batch was planned (30.0) but occupying
            // later windows: legal, the entry clock stays monotone.
            entry(
                30.0,
                TraceEvent::Transfer {
                    drive: D0,
                    tape: TAPE_A,
                    job: 1,
                    extents: 1,
                    seek: SimTime::ZERO,
                    transfer: t(5.0),
                    start: t(40.0),
                    finish: t(45.0),
                },
            ),
            entry(
                30.0,
                TraceEvent::Transfer {
                    drive: D0,
                    tape: TAPE_A,
                    job: 2,
                    extents: 1,
                    seek: SimTime::ZERO,
                    transfer: t(5.0),
                    start: t(45.0),
                    finish: t(50.0),
                },
            ),
            entry(40.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(45.0, TraceEvent::JobCompleted { job: 1, drive: D0 }),
            entry(50.0, TraceEvent::JobCompleted { job: 2, drive: D0 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.jobs, 3);
        assert_eq!(report.transfers, 3);
        assert_eq!(report.exchanges, 1);
    }

    #[test]
    fn flags_service_before_submission() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                20.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            // Transfer window starts at 20 (legal emission time) but the
            // window itself begins at 5, before the job existed.
            entry(
                20.0,
                TraceEvent::Transfer {
                    drive: D0,
                    tape: TAPE_A,
                    job: 0,
                    extents: 1,
                    seek: SimTime::ZERO,
                    transfer: t(1.0),
                    start: t(5.0),
                    finish: t(6.0),
                },
            ),
            entry(21.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::ServedBeforeSubmit { job: 0, .. })),
            "{report}"
        );
    }

    #[test]
    fn flags_transfer_after_completion() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 1.0),
            entry(1.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            transfer(1.0, D0, TAPE_A, 0, 1.0), // streams again after done
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::TransferAfterCompletion { job: 0 })),
            "{report}"
        );
    }

    #[test]
    fn flags_unknown_job_and_wrong_tape() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 7,
                    tape: TAPE_B,
                },
            ),
            transfer(0.0, D0, TAPE_A, 3, 1.0), // job 3 never submitted
            entry(1.0, TraceEvent::JobCompleted { job: 3, drive: D0 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::UnknownJob { job: 3 })));

        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_B,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 1.0), // submitted for B, streamed A
            entry(1.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::WrongTapeForJob { .. })));
    }

    #[test]
    fn flags_service_past_drive_failure() {
        // The transfer window runs until 10.0 but the drive failed at 4.0
        // (the failure is noticed — emitted — later, which is legal; the
        // window overrunning it is not).
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 10.0),
            entry(10.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(
                12.0,
                TraceEvent::DriveFailed {
                    drive: D0,
                    at: t(4.0),
                },
            ),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report.violations.iter().any(|v| matches!(
                v.kind,
                ViolationKind::ServiceOnFailedDrive { drive, .. } if drive == D0
            )),
            "{report}"
        );

        // Same trace with the failure after the window: clean.
        let mut ok = trace.clone();
        ok[4] = entry(
            12.0,
            TraceEvent::DriveFailed {
                drive: D0,
                at: t(10.0),
            },
        );
        assert!(TraceAuditor::new().audit(&ok).is_clean());
    }

    #[test]
    fn flags_exchange_during_jam() {
        let jammed = |s: f64, f: f64| {
            entry(
                0.0,
                TraceEvent::RobotJammed {
                    library: 0,
                    start: t(s),
                    finish: t(f),
                },
            )
        };
        let mut trace = vec![jammed(5.0, 20.0)];
        trace.extend(valid_trace()); // its exchange runs 12.0 .. 40.0
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::ExchangeDuringJam { library: 0, .. })),
            "{report}"
        );

        // A jam that ends before the exchange starts is fine, as is a jam
        // in another library.
        let mut ok = vec![jammed(5.0, 12.0)];
        ok.extend(valid_trace());
        assert!(TraceAuditor::new().audit(&ok).is_clean());
        let mut other = vec![entry(
            0.0,
            TraceEvent::RobotJammed {
                library: 3,
                start: t(5.0),
                finish: t(200.0),
            },
        )];
        other.extend(valid_trace());
        assert!(TraceAuditor::new().audit(&other).is_clean());
    }

    #[test]
    fn retry_cap_is_enforced_when_configured() {
        let mut trace = valid_trace();
        trace.push(entry(
            45.0,
            TraceEvent::ReadFaulted {
                job: 1,
                drive: D0,
                retries: 5,
                penalty: t(9.0),
                fatal: false,
            },
        ));
        // Without a cap: no retry violation (the fault is informational).
        let report = TraceAuditor::new().audit(&trace);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.faults, 1);
        // With a cap of 3: flagged.
        let report = TraceAuditor::new().with_retry_cap(3).audit(&trace);
        assert!(
            report.violations.iter().any(|v| matches!(
                v.kind,
                ViolationKind::RetriesExceeded {
                    job: 1,
                    retries: 5,
                    cap: 3
                }
            )),
            "{report}"
        );
        // A within-budget fault passes the cap.
        let report = TraceAuditor::new().with_retry_cap(5).audit(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn fatal_fault_must_be_resolved() {
        // Job 0 fatally faults mid-stream and is never lost or failed
        // over: UnresolvedFault (its JobCompleted is absent too, but the
        // resolution rule is the specific signal).
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 10.0),
            entry(
                0.0,
                TraceEvent::ReadFaulted {
                    job: 0,
                    drive: D0,
                    retries: 3,
                    penalty: t(30.0),
                    fatal: true,
                },
            ),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::UnresolvedFault { job: 0 })),
            "{report}"
        );

        // Resolving it with a loss makes the trace clean (and the job no
        // longer counts as never-completed).
        let mut resolved_trace = trace.clone();
        resolved_trace.push(entry(10.0, TraceEvent::JobLost { job: 0 }));
        let report = TraceAuditor::new().audit(&resolved_trace);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.losses, 1);
    }

    #[test]
    fn failover_needs_a_submitted_replacement() {
        let base = |tail: Vec<TraceEntry>| {
            let mut trace = vec![
                entry(
                    0.0,
                    TraceEvent::AssumeMounted {
                        drive: D0,
                        tape: TAPE_A,
                    },
                ),
                entry(
                    0.0,
                    TraceEvent::JobSubmitted {
                        job: 0,
                        tape: TAPE_A,
                    },
                ),
                transfer(0.0, D0, TAPE_A, 0, 10.0),
                entry(
                    0.0,
                    TraceEvent::ReadFaulted {
                        job: 0,
                        drive: D0,
                        retries: 3,
                        penalty: t(30.0),
                        fatal: true,
                    },
                ),
            ];
            trace.extend(tail);
            trace
        };

        // Failover to a phantom job: flagged.
        let report = TraceAuditor::new().audit(&base(vec![entry(
            10.0,
            TraceEvent::FailedOver {
                job: 0,
                replacement: 1,
            },
        )]));
        assert!(
            report.violations.iter().any(|v| matches!(
                v.kind,
                ViolationKind::FailoverWithoutSubmit {
                    job: 0,
                    replacement: 1
                }
            )),
            "{report}"
        );

        // Failover whose replacement is submitted and served: clean.
        let report = TraceAuditor::new().audit(&base(vec![
            entry(
                10.0,
                TraceEvent::FailedOver {
                    job: 0,
                    replacement: 1,
                },
            ),
            entry(
                10.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_A,
                },
            ),
            transfer(10.0, D0, TAPE_A, 1, 5.0),
            entry(15.0, TraceEvent::JobCompleted { job: 1, drive: D0 }),
        ]));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.failovers, 1);
    }

    #[test]
    fn loss_without_any_fault_is_flagged() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(1.0, TraceEvent::JobLost { job: 0 }),
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::ResolvedWithoutFault { job: 0 })),
            "{report}"
        );

        // The same loss with a drive failure on record is legitimate
        // (the job was stranded by the failure).
        let trace = vec![
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                1.0,
                TraceEvent::DriveFailed {
                    drive: D0,
                    at: t(0.5),
                },
            ),
            entry(1.0, TraceEvent::JobLost { job: 0 }),
        ];
        assert!(TraceAuditor::new().audit(&trace).is_clean());
    }

    #[test]
    fn resolved_jobs_cannot_stream_or_complete_again() {
        let trace = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            transfer(0.0, D0, TAPE_A, 0, 1.0),
            entry(
                0.0,
                TraceEvent::ReadFaulted {
                    job: 0,
                    drive: D0,
                    retries: 0,
                    penalty: SimTime::ZERO,
                    fatal: true,
                },
            ),
            entry(1.0, TraceEvent::JobLost { job: 0 }),
            transfer(1.0, D0, TAPE_A, 0, 1.0), // streams after loss
            entry(2.0, TraceEvent::JobCompleted { job: 0, drive: D0 }), // completes after loss
            entry(2.0, TraceEvent::JobLost { job: 0 }), // resolved twice
        ];
        let report = TraceAuditor::new().audit(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::TransferAfterCompletion { job: 0 })));
        assert!(
            report
                .violations
                .iter()
                .filter(|v| matches!(v.kind, ViolationKind::CompletedTwice { job: 0 }))
                .count()
                >= 2,
            "{report}"
        );
    }

    /// Every subtlety the streaming auditor must mirror, checked against
    /// the batch verdict on crafted traces: duplicate-submit overwrite,
    /// completed-then-resolved short-circuit, late `DriveFailed`
    /// indicting old windows, jams, overlap adjacency, retry caps,
    /// dangling failovers and never-completed jobs.
    #[test]
    fn streaming_matches_batch_on_crafted_traces() {
        let late_failure = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            // Duplicate submit overwrites the tape on record.
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_B,
                },
            ),
            transfer(1.0, D0, TAPE_A, 0, 5.0),
            entry(6.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            // Resolution after completion: flagged, but must NOT mark the
            // job resolved (the batch path short-circuits the insert).
            entry(6.0, TraceEvent::JobLost { job: 0 }),
            // The failure instant is in the past — it indicts the window
            // streamed five entries ago.
            entry(
                7.0,
                TraceEvent::DriveFailed {
                    drive: D0,
                    at: t(3.0),
                },
            ),
        ];
        let overlapping = vec![
            entry(
                0.0,
                TraceEvent::AssumeMounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tape: TAPE_A,
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 2,
                    tape: TAPE_A,
                },
            ),
            // Three windows where only the sorted-adjacent pairs overlap.
            transfer(0.0, D0, TAPE_A, 0, 100.0),
            transfer(1.0, D0, TAPE_A, 1, 1.0),
            transfer(3.0, D0, TAPE_A, 2, 47.0),
            entry(100.0, TraceEvent::JobCompleted { job: 0, drive: D0 }),
            entry(100.0, TraceEvent::JobCompleted { job: 1, drive: D0 }),
            entry(100.0, TraceEvent::JobCompleted { job: 2, drive: D0 }),
        ];
        let faults_and_jams = vec![
            entry(
                0.0,
                TraceEvent::RobotJammed {
                    library: 0,
                    start: t(4.0),
                    finish: t(6.0),
                },
            ),
            entry(
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tape: TAPE_A,
                },
            ),
            entry(
                1.0,
                TraceEvent::ExchangeBegun {
                    drive: D0,
                    tape: TAPE_A,
                    arm: 0,
                    start: t(5.0),
                    finish: t(7.0),
                },
            ),
            entry(
                7.0,
                TraceEvent::Mounted {
                    drive: D0,
                    tape: TAPE_A,
                },
            ),
            entry(
                7.0,
                TraceEvent::ReadFaulted {
                    job: 0,
                    drive: D0,
                    retries: 9,
                    penalty: t(1.0),
                    fatal: true,
                },
            ),
            // Failover to a replacement that is never submitted; the
            // fatal fault on job 1 is never resolved either.
            entry(
                8.0,
                TraceEvent::FailedOver {
                    job: 0,
                    replacement: 77,
                },
            ),
            entry(
                8.0,
                TraceEvent::ReadFaulted {
                    job: 1,
                    drive: D1,
                    retries: 1,
                    penalty: t(1.0),
                    fatal: true,
                },
            ),
            // Time goes backwards, and job 2 is submitted but never done.
            entry(
                7.5,
                TraceEvent::JobSubmitted {
                    job: 2,
                    tape: TAPE_B,
                },
            ),
        ];
        for (label, trace) in [
            ("valid", valid_trace()),
            ("late_failure", late_failure),
            ("overlapping", overlapping),
            ("faults_and_jams", faults_and_jams),
            ("empty", Vec::new()),
        ] {
            for auditor in [TraceAuditor::new(), TraceAuditor::new().with_retry_cap(3)] {
                let batch = auditor.audit(&trace);
                let mut stream = auditor.stream();
                stream.push_all(&trace);
                assert_eq!(stream.finish(), batch, "{label}");
            }
        }
    }
}

#[cfg(test)]
mod streaming_proptests {
    use super::*;
    use proptest::prelude::*;

    /// Decodes one generated 4-tuple into a trace entry. Small id spaces
    /// force collisions (duplicate submits, wrong tapes, double
    /// completions); the clock mostly advances but can step back; window
    /// endpoints can precede submissions or their own starts.
    fn decode(v: u32, a: u32, b: u32, c: u32, clock: &mut f64) -> TraceEntry {
        *clock = (*clock + (c % 8) as f64 * 0.25 - 0.25).max(0.0);
        let drive = DriveKey(a % 3);
        let tape = TapeKey(u64::from(b) % 4);
        let job = (a / 3) % 6;
        let start = SimTime::from_secs((*clock + ((c / 8) % 4) as f64 * 0.5 - 0.5).max(0.0));
        let finish = SimTime::from_secs((*clock + ((c / 32) % 4) as f64 * 0.75 - 0.25).max(0.0));
        let event = match v {
            0 => TraceEvent::AssumeMounted { drive, tape },
            1 => TraceEvent::JobSubmitted { job, tape },
            2 => TraceEvent::Unmounted { drive, tape },
            3 => TraceEvent::ExchangeBegun {
                drive,
                tape,
                arm: b % 2,
                start,
                finish,
            },
            4 => TraceEvent::Mounted { drive, tape },
            5 => TraceEvent::Transfer {
                drive,
                tape,
                job,
                extents: 1,
                seek: SimTime::ZERO,
                transfer: SimTime::from_secs(0.5),
                start,
                finish,
            },
            6 => TraceEvent::JobCompleted { job, drive },
            7 => TraceEvent::DriveFailed { drive, at: start },
            8 => TraceEvent::RobotJammed {
                library: a % 2,
                start,
                finish,
            },
            9 => TraceEvent::ReadFaulted {
                job,
                drive,
                retries: b % 5,
                penalty: SimTime::from_secs(1.0),
                fatal: c % 2 == 1,
            },
            10 => TraceEvent::JobLost { job },
            _ => TraceEvent::FailedOver {
                job,
                replacement: (b / 4) % 8,
            },
        };
        TraceEntry {
            time: SimTime::from_secs(*clock),
            event,
        }
    }

    proptest! {
        /// The streaming auditor returns the exact report — counters,
        /// violation kinds, indices, timestamps and order — that the
        /// batch auditor produces on the same entries, for arbitrary
        /// (including deeply malformed) traces and any retry cap.
        #[test]
        fn streaming_audit_is_verdict_identical_to_batch(
            raw in proptest::collection::vec((0u32..12, 0u32..64, 0u32..64, 0u32..256), 0..150),
            cap in 0u32..6,
        ) {
            let mut clock = 0.0;
            let trace: Vec<TraceEntry> = raw
                .iter()
                .map(|&(v, a, b, c)| decode(v, a, b, c, &mut clock))
                .collect();
            for auditor in [TraceAuditor::new(), TraceAuditor::new().with_retry_cap(cap)] {
                let batch = auditor.audit(&trace);
                let mut stream = auditor.stream();
                stream.push_all(&trace);
                let streamed = stream.finish();
                prop_assert_eq!(&streamed, &batch);
            }
        }
    }
}
