//! # tapesim-des
//!
//! A small, deterministic discrete-event simulation (DES) engine.
//!
//! This crate is the execution substrate for the multiple-tape-library
//! simulator used to reproduce *Object Placement in Parallel Tape Storage
//! Systems* (ICPP 2006). It is intentionally generic: nothing in here knows
//! about tapes, drives or robots. The engine provides
//!
//! * [`SimTime`] — a total-ordered, finite simulation clock value,
//! * [`EventQueue`] — a stable priority queue of timestamped events with
//!   cancellation support,
//! * [`Scheduler`] / [`World`] — the execution model: a world handles one
//!   event at a time and may schedule further events,
//! * [`Resource`] — a calendar-based FCFS server (used for robot arms),
//! * [`stats`] — lightweight online statistics used by simulations,
//! * [`trace`] / [`audit`] — a typed event transcript ([`Tracer`]) and an
//!   invariant checker over it ([`TraceAuditor`]).
//!
//! ## Determinism
//!
//! Two runs of the same simulation with the same inputs produce identical
//! event orders: ties in time are broken first by an explicit priority and
//! then by insertion order (a monotone sequence number). No wall-clock or
//! ambient randomness is consulted anywhere.
//!
//! ## Example
//!
//! ```
//! use tapesim_des::{Scheduler, SimTime, World};
//!
//! struct Counter {
//!     fired: Vec<(SimTime, u32)>,
//! }
//!
//! impl World for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
//!         self.fired.push((now, ev));
//!         if ev < 3 {
//!             sched.schedule_in(SimTime::from_secs(1.0), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut world = Counter { fired: Vec::new() };
//! let mut sched = Scheduler::new();
//! sched.schedule_at(SimTime::ZERO, 0);
//! let end = sched.run(&mut world);
//! assert_eq!(end, SimTime::from_secs(3.0));
//! assert_eq!(world.fired.len(), 4);
//! ```

pub mod audit;
pub mod parallel;
pub mod queue;
pub mod resource;
pub mod scheduler;
pub mod stats;
pub mod time;
pub mod trace;

pub use audit::{AuditReport, AuditStream, TraceAuditor, Violation, ViolationKind};
pub use parallel::{run_windowed, window_barriers, WindowPartition, WindowTrace};
pub use queue::{EventHandle, EventQueue};
pub use resource::Resource;
pub use scheduler::{RunOutcome, Scheduler, World};
pub use time::SimTime;
pub use trace::{DriveKey, TapeKey, TraceEntry, TraceEvent, Tracer};
