//! The event queue: a stable priority queue of timestamped events.
//!
//! Ordering is `(time, priority, sequence)`: earlier times first, then lower
//! priority values, then insertion order. The sequence number makes the queue
//! *stable*, which is what makes whole simulations reproducible.
//!
//! Storage is a pooled slab plus an index-based binary heap: entries live in
//! `slots`, freed slots are recycled through a free list, and the heap orders
//! slot indices rather than owning the entries. Steady-state operation —
//! push/pop churn below the high-water mark — performs no allocations at all;
//! the slab and heap vectors only grow when the live count sets a new record.
//!
//! Events can be cancelled through the [`EventHandle`] returned at insertion;
//! cancellation is O(1) (the slot is tombstoned) and tombstones are dropped
//! lazily when they reach the front of the heap.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Priority of an event at equal timestamps. Lower fires first.
pub type Priority = i32;

/// Handle identifying a scheduled event, usable for cancellation.
///
/// The handle pairs the slab slot with the entry's unique sequence number, so
/// a handle to a fired (or cancelled) event can never alias a later entry that
/// recycled the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    seq: u64,
}

/// One slab slot. `event` is `None` only while the slot sits on the free
/// list; a cancelled-but-not-yet-popped entry keeps its event until the
/// tombstone surfaces at the heap top.
struct Slot<E> {
    time: SimTime,
    priority: Priority,
    seq: u64,
    cancelled: bool,
    event: Option<E>,
}

/// A stable, cancellable priority queue of events.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    /// Recycled slot indices, reused before the slab grows.
    free: Vec<u32>,
    /// Min-heap of slot indices, ordered by `(time, priority, seq)`.
    heap: Vec<u32>,
    next_seq: u64,
    /// Live (non-cancelled) entry count.
    live: usize,
    /// High-water mark of the live queue length, for diagnostics.
    max_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events before
    /// any of its vectors reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            heap: Vec::with_capacity(capacity),
            next_seq: 0,
            live: 0,
            max_len: 0,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Discards all pending events while keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.heap.clear();
        self.live = 0;
    }

    /// Schedules `event` at `time` with default priority 0.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        self.push_with_priority(time, 0, event)
    }

    /// Schedules `event` at `time`; lower `priority` fires first among
    /// same-time events.
    pub fn push_with_priority(
        &mut self,
        time: SimTime,
        priority: Priority,
        event: E,
    ) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let recycled = self.free.pop();
        let slot = match recycled.and_then(|idx| self.slots.get_mut(idx as usize).map(|s| (idx, s)))
        {
            Some((idx, s)) => {
                s.time = time;
                s.priority = priority;
                s.seq = seq;
                s.cancelled = false;
                s.event = Some(event);
                idx
            }
            None => {
                // u32 slot indices: 4 billion concurrently-live events
                // would exhaust memory long before this saturates.
                let idx = u32::try_from(self.slots.len()).unwrap_or(u32::MAX);
                self.slots.push(Slot {
                    time,
                    priority,
                    seq,
                    cancelled: false,
                    event: Some(event),
                });
                idx
            }
        };
        self.heap.push(slot);
        self.sift_up(self.heap.len() - 1);
        self.live += 1;
        self.max_len = self.max_len.max(self.live);
        EventHandle { slot, seq }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an event
    /// that already fired (or was already cancelled) returns `false`.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slots.get_mut(handle.slot as usize) else {
            return false;
        };
        // The seq check rejects stale handles whose slot was recycled, and
        // the event check rejects handles to freed (fired) slots.
        if slot.seq != handle.seq || slot.cancelled || slot.event.is_none() {
            return false;
        }
        slot.cancelled = true;
        self.live -= 1;
        true
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let top = *self.heap.first()?;
            self.pop_top();
            // Heap entries always point at occupied slots; a miss here
            // (corrupt index, already-freed slot) is skipped rather than
            // surfaced as a bogus event.
            let Some(slot) = self.slots.get_mut(top as usize) else {
                continue;
            };
            let Some(event) = slot.event.take() else {
                continue;
            };
            let cancelled = slot.cancelled;
            let time = slot.time;
            self.free.push(top);
            if cancelled {
                continue;
            }
            self.live -= 1;
            return Some((time, event));
        }
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Prune cancelled entries off the top so peek is accurate.
        loop {
            let top = *self.heap.first()?;
            let Some(slot) = self.slots.get_mut(top as usize) else {
                self.pop_top();
                continue;
            };
            if slot.cancelled {
                slot.event = None;
                self.pop_top();
                self.free.push(top);
                continue;
            }
            return Some(slot.time);
        }
    }

    /// Compares two slab slots by the queue's total order.
    ///
    /// `(time, priority, seq)` with `seq` unique makes this a *total* order:
    /// no two queued entries ever compare equal, so pop order is fully
    /// determined by the keys and independent of heap layout history.
    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        let (Some(sa), Some(sb)) = (self.slots.get(a as usize), self.slots.get(b as usize)) else {
            // Unreachable (the heap only carries minted slots); index
            // order is still a total order, keeping the heap consistent.
            return a < b;
        };
        match sa.time.cmp(&sb.time) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => match sa.priority.cmp(&sb.priority) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => sa.seq < sb.seq,
            },
        }
    }

    /// Removes the heap's root index, restoring the heap property.
    fn pop_top(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (Some(&child_slot), Some(&parent_slot)) = (self.heap.get(i), self.heap.get(parent))
            else {
                return;
            };
            if self.less(child_slot, parent_slot) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let Some(&root_slot) = self.heap.get(i) else {
                return;
            };
            let mut smallest = i;
            let mut smallest_slot = root_slot;
            for child in [2 * i + 1, 2 * i + 2] {
                if let Some(&child_slot) = self.heap.get(child) {
                    if self.less(child_slot, smallest_slot) {
                        smallest = child;
                        smallest_slot = child_slot;
                    }
                }
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_priority_then_fifo() {
        let mut q = EventQueue::new();
        q.push_with_priority(t(1.0), 5, "low-prio-first-in");
        q.push_with_priority(t(1.0), 0, "high-prio");
        q.push_with_priority(t(1.0), 5, "low-prio-second-in");
        assert_eq!(q.pop().unwrap().1, "high-prio");
        assert_eq!(q.pop().unwrap().1, "low-prio-first-in");
        assert_eq!(q.pop().unwrap().1, "low-prio-second-in");
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(1.0), 1);
        let h2 = q.push(t(2.0), 2);
        q.push(t(3.0), 3);
        assert_eq!(q.len(), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert!(!q.cancel(h1), "cancelling a fired event reports false");
        assert_eq!(q.pop(), Some((t(3.0), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn max_len_high_water_mark() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        q.pop();
        q.push(t(3.0), 3);
        assert_eq!(q.max_len(), 2);
    }

    #[test]
    fn bogus_handle_is_rejected() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(!q.cancel(EventHandle { slot: 42, seq: 42 }));
    }

    #[test]
    fn recycled_slot_does_not_alias_old_handle() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(1.0), 1);
        q.pop();
        // The new entry recycles slot 0; the stale handle must not cancel it.
        let h2 = q.push(t(2.0), 2);
        assert!(!q.cancel(h1), "stale handle cancelled a recycled slot");
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert!(!q.cancel(h2), "handle to a fired event stays dead");
    }

    #[test]
    fn steady_state_churn_reuses_slots() {
        let mut q = EventQueue::with_capacity(4);
        for i in 0..100u32 {
            q.push(t(i as f64), i);
            let (_, v) = q.pop().unwrap();
            assert_eq!(v, i);
        }
        // Only one slot was ever needed: the slab never grew past it.
        assert_eq!(q.max_len(), 1);
        assert!(q.slots.len() <= 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut q = EventQueue::new();
        for i in 0..16u32 {
            q.push(t(i as f64), i);
        }
        let cap = q.slots.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert!(q.slots.capacity() >= cap);
        q.push(t(1.0), 99);
        assert_eq!(q.pop(), Some((t(1.0), 99)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops come out sorted by (time, then insertion order for ties),
        /// and every live event comes out exactly once.
        #[test]
        fn pops_are_sorted_and_complete(times in proptest::collection::vec(0u32..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_secs(t as f64), i);
            }
            let mut popped = Vec::new();
            let mut last = (SimTime::ZERO, 0usize);
            while let Some((t, v)) = q.pop() {
                prop_assert!(t >= last.0, "time went backwards");
                if t == last.0 && !popped.is_empty() {
                    prop_assert!(v > last.1, "FIFO broken among ties");
                }
                last = (t, v);
                popped.push(v);
            }
            let mut sorted = popped.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..times.len()).collect::<Vec<_>>());
        }

        /// Cancelled events never pop; everything else does.
        #[test]
        fn cancellation_is_exact(
            times in proptest::collection::vec(0u32..100, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                handles.push(q.push(SimTime::from_secs(t as f64), i));
            }
            let mut cancelled = std::collections::HashSet::new();
            for (i, h) in handles.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    prop_assert!(q.cancel(*h));
                    cancelled.insert(i);
                }
            }
            let mut popped = std::collections::HashSet::new();
            while let Some((_, v)) = q.pop() {
                prop_assert!(!cancelled.contains(&v), "cancelled event {v} popped");
                popped.insert(v);
            }
            prop_assert_eq!(popped.len() + cancelled.len(), times.len());
        }

        /// Interleaved push/pop/cancel churn matches a model built on sorting:
        /// the pooled slab with slot recycling must stay externally
        /// indistinguishable from the naive stable queue.
        #[test]
        fn churn_matches_reference_model(
            ops in proptest::collection::vec((0u32..50, any::<bool>(), any::<bool>()), 1..300),
        ) {
            let mut q = EventQueue::with_capacity(8);
            // Model: Vec of (time, seq, id) kept live; pop = min by (time, seq).
            let mut model: Vec<(u32, usize, usize)> = Vec::new();
            let mut handles: Vec<(EventHandle, usize)> = Vec::new();
            let mut next_id = 0usize;
            let mut seq = 0usize;
            for &(time, do_pop, do_cancel) in &ops {
                if do_pop {
                    let got = q.pop();
                    model.sort_by_key(|&(t, s, _)| (t, s));
                    if model.is_empty() {
                        prop_assert_eq!(got, None);
                    } else {
                        let (t, _, id) = model.remove(0);
                        let (gt, gid) = got.expect("model has a live event");
                        prop_assert_eq!(gt, SimTime::from_secs(t as f64));
                        prop_assert_eq!(gid, id);
                    }
                } else if do_cancel && !handles.is_empty() {
                    let (h, id) = handles.swap_remove(time as usize % handles.len());
                    let in_model = model.iter().position(|&(_, _, mid)| mid == id);
                    match in_model {
                        Some(pos) => {
                            prop_assert!(q.cancel(h));
                            model.remove(pos);
                        }
                        None => {
                            prop_assert!(!q.cancel(h), "fired event cancelled");
                        }
                    }
                } else {
                    let id = next_id;
                    next_id += 1;
                    let h = q.push(SimTime::from_secs(time as f64), id);
                    handles.push((h, id));
                    model.push((time, seq, id));
                    seq += 1;
                }
                prop_assert_eq!(q.len(), model.len());
            }
        }
    }
}
