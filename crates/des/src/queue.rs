//! The event queue: a stable priority queue of timestamped events.
//!
//! Ordering is `(time, priority, sequence)`: earlier times first, then lower
//! priority values, then insertion order. The sequence number makes the queue
//! *stable*, which is what makes whole simulations reproducible.
//!
//! Events can be cancelled through the [`EventHandle`] returned at insertion;
//! cancelled entries are dropped lazily when they reach the front.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority of an event at equal timestamps. Lower fires first.
pub type Priority = i32;

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    priority: Priority,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering so the earliest entry is on
// top.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.priority.cmp(&self.priority))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A stable, cancellable priority queue of events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    // Sorted list of cancelled sequence numbers still inside `heap`.
    cancelled: Vec<u64>,
    /// High-water mark of the live queue length, for diagnostics.
    max_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
            max_len: 0,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Schedules `event` at `time` with default priority 0.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        self.push_with_priority(time, 0, event)
    }

    /// Schedules `event` at `time`; lower `priority` fires first among
    /// same-time events.
    pub fn push_with_priority(
        &mut self,
        time: SimTime,
        priority: Priority,
        event: E,
    ) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            priority,
            seq,
            event,
        });
        self.max_len = self.max_len.max(self.len());
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an event
    /// that already fired (or was already cancelled) returns `false`.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        match self.cancelled.binary_search(&handle.0) {
            Ok(_) => false, // already cancelled
            Err(pos) => {
                // Only mark if the event is plausibly still queued. We cannot
                // cheaply look inside the heap, so track fired events by
                // relying on pop() removing their seq from consideration:
                // a fired seq is never re-checked because pop() consults and
                // prunes `cancelled` eagerly.
                if self.contains_seq_possible(handle.0) {
                    self.cancelled.insert(pos, handle.0);
                    true
                } else {
                    false
                }
            }
        }
    }

    // A seq could still be queued only if some queued entry has that seq.
    // Linear scan is fine: cancellation is rare and queues are small in this
    // workload (hundreds of events).
    fn contains_seq_possible(&self, seq: u64) -> bool {
        self.heap.iter().any(|e| e.seq == seq)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if let Ok(pos) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(pos);
                continue;
            }
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Prune cancelled entries off the top so peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if let Ok(pos) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(pos);
                self.heap.pop();
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), "c");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_priority_then_fifo() {
        let mut q = EventQueue::new();
        q.push_with_priority(t(1.0), 5, "low-prio-first-in");
        q.push_with_priority(t(1.0), 0, "high-prio");
        q.push_with_priority(t(1.0), 5, "low-prio-second-in");
        assert_eq!(q.pop().unwrap().1, "high-prio");
        assert_eq!(q.pop().unwrap().1, "low-prio-first-in");
        assert_eq!(q.pop().unwrap().1, "low-prio-second-in");
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(1.0), 1);
        let h2 = q.push(t(2.0), 2);
        q.push(t(3.0), 3);
        assert_eq!(q.len(), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert!(!q.cancel(h1), "cancelling a fired event reports false");
        assert_eq!(q.pop(), Some((t(3.0), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn max_len_high_water_mark() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        q.pop();
        q.push(t(3.0), 3);
        assert_eq!(q.max_len(), 2);
    }

    #[test]
    fn bogus_handle_is_rejected() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops come out sorted by (time, then insertion order for ties),
        /// and every live event comes out exactly once.
        #[test]
        fn pops_are_sorted_and_complete(times in proptest::collection::vec(0u32..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_secs(t as f64), i);
            }
            let mut popped = Vec::new();
            let mut last = (SimTime::ZERO, 0usize);
            while let Some((t, v)) = q.pop() {
                prop_assert!(t >= last.0, "time went backwards");
                if t == last.0 && !popped.is_empty() {
                    prop_assert!(v > last.1, "FIFO broken among ties");
                }
                last = (t, v);
                popped.push(v);
            }
            let mut sorted = popped.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..times.len()).collect::<Vec<_>>());
        }

        /// Cancelled events never pop; everything else does.
        #[test]
        fn cancellation_is_exact(
            times in proptest::collection::vec(0u32..100, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                handles.push(q.push(SimTime::from_secs(t as f64), i));
            }
            let mut cancelled = std::collections::HashSet::new();
            for (i, h) in handles.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    prop_assert!(q.cancel(*h));
                    cancelled.insert(i);
                }
            }
            let mut popped = std::collections::HashSet::new();
            while let Some((_, v)) = q.pop() {
                prop_assert!(!cancelled.contains(&v), "cancelled event {v} popped");
                popped.insert(v);
            }
            prop_assert_eq!(popped.len() + cancelled.len(), times.len());
        }
    }
}
