//! Std-only shim of the `serde_json` API surface used by this workspace:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`].
//!
//! Serialization goes through the shimmed serde's [`Value`] tree. Floats
//! print via Rust's shortest-round-trip formatting (`{:?}`), giving the
//! `float_roundtrip` fidelity the real dependency was configured for.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    let newline = |out: &mut String, depth: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {f}")));
            }
            // {:?} is shortest-round-trip and always keeps a decimal point.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, depth + 1);
                write_value(item, indent, depth + 1, out)?;
            }
            newline(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)?;
            }
            newline(out, depth);
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Float(0.1 + 0.2)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("s".into(), Value::Str("he said \"hi\"\n".into())),
            ("neg".into(), Value::Int(-3)),
        ]);
        let mut s = String::new();
        write_value(&v, None, 0, &mut s).unwrap();
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_round_trip_is_exact() {
        let f = 0.1f64 + 0.2;
        let s = to_string(&f).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(f.to_bits(), back.to_bits());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<(u32, u32)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<bool>("maybe").is_err());
    }
}
