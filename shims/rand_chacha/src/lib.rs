//! Std-only ChaCha12 random number generator for the offline `rand` shim.
//!
//! This is a genuine ChaCha12 keystream generator (the same core the real
//! `rand_chacha` uses), keyed from a 64-bit seed via SplitMix64 expansion.
//! Output does not bit-match upstream `rand_chacha` (which expands seeds
//! differently), but it is deterministic, high-quality and fast — all the
//! simulator needs.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key (words 4..12 of the initial state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14); nonce (words 14..16) is zero.
    counter: u64,
    /// The current keystream block.
    block: [u32; 16],
    /// Next unread word within `block`.
    index: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce stays zero: one seed, one stream.
        let initial = state;
        for _ in 0..6 {
            // Two rounds (one column + one diagonal pass) per iteration.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the seed into the 256-bit key.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut rng = ChaCha12Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_is_roughly_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "successive blocks must differ");
    }
}
