//! Std-only shim of the `serde` API surface used by this workspace.
//!
//! The build environment has no crates.io access, so the real serde cannot
//! be fetched. This shim keeps the workspace's public API (`Serialize` /
//! `Deserialize` traits, `#[derive(Serialize, Deserialize)]`) while using a
//! drastically simpler data model: values serialize to a JSON-shaped
//! [`value::Value`] tree and deserialize back from it. `serde_json` (also
//! shimmed) prints and parses that tree.
//!
//! Only what the workspace needs is implemented: primitives, `String`,
//! `Option`, `Vec`, 2/3-tuples, and the derive for plain structs, tuple
//! structs and fieldless-or-struct-variant enums with an optional
//! `#[serde(default)]` / `#[serde(default = "path")]` field attribute.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// "expected X while reading Y" constructor.
    pub fn expected(what: &str, context: &str) -> Error {
        Error(format!("expected {what} while reading {context}"))
    }

    /// Missing-field constructor.
    pub fn missing(field: &str, context: &str) -> Error {
        Error(format!("missing field `{field}` in {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can render itself into the JSON-shaped [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A value that can be reconstructed from the JSON-shaped [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::expected("3-element array", "tuple")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u8> = Deserialize::from_value(&vec![1u8, 2].to_value()).unwrap();
        assert_eq!(v, vec![1, 2]);
        let o: Option<u8> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
        let t: (u8, String) = Deserialize::from_value(&(3u8, "x".to_string()).to_value()).unwrap();
        assert_eq!(t, (3, "x".to_string()));
    }

    #[test]
    fn numeric_coercions() {
        // Integral floats deserialize into integer fields (JSON readers may
        // normalise numbers either way).
        assert_eq!(u64::from_value(&Value::Float(8.0)).unwrap(), 8);
        assert_eq!(f64::from_value(&Value::UInt(8)).unwrap(), 8.0);
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}
