//! The JSON-shaped value tree shared by the `serde` and `serde_json` shims.

/// A JSON-shaped dynamic value.
///
/// Objects keep their fields in insertion order (a `Vec` of pairs, not a
/// map), so serialization is deterministic and mirrors field declaration
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, field order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field by name in an object's field list.
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}
