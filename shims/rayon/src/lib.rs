//! Std-only shim of the `rayon` API surface used by this workspace:
//! `slice.par_iter().map(f).collect()`.
//!
//! Work is genuinely parallel — items are split into one contiguous chunk
//! per available core and mapped on scoped `std::thread`s, preserving input
//! order in the collected output. No work stealing; the experiment sweeps
//! this serves are uniform enough that static chunking is fine.

/// A pending parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps `f` over the items in parallel.
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on scoped threads and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|items| scope.spawn(move || items.iter().map(f).collect::<Vec<R>>()))
                .collect();
            parts = handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect();
        });
        parts.into_iter().flatten().collect()
    }
}

/// Entry points normally provided by rayon's prelude.
pub mod prelude {
    use super::ParIter;

    /// Types with a by-reference parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// The item type.
        type Item: 'a;

        /// A parallel iterator over references.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_small_inputs() {
        let one = [5u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![6]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
