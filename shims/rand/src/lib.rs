//! Std-only shim of the `rand` API surface used by this workspace:
//! [`RngCore`], [`Rng`] (`gen_range`/`gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom`] (`shuffle`).
//!
//! The build environment has no crates.io access; this shim keeps the
//! workspace's generator-facing code unchanged. Streams are deterministic
//! for a given seed but do not bit-match upstream `rand` — all results in
//! this repository are produced and compared under the shim.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over half-open / inclusive intervals.
///
/// Mirroring upstream, [`SampleRange`] has a single blanket impl per range
/// shape over `T: SampleUniform`. That single impl is what lets the
/// compiler infer an integer literal's type from the use site
/// (`cursor += rng.gen_range(0..60)` with `cursor: u64`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits of one output word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uint_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Modulo bias is < span / 2^64 — negligible for the spans
                // used here (all far below 2^32).
                lo + (rng.next_u64() % span) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + (hi - lo) * unit_f64(rng);
        // Floating rounding can land exactly on `hi`; stay half-open.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        f64::sample_half_open(lo as f64, hi as f64, rng) as f32
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        f64::sample_inclusive(lo as f64, hi as f64, rng) as f32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers ([`SliceRandom`]).

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Items from the `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// SplitMix64 — enough to exercise the trait plumbing.
    struct Mix(u64);

    impl RngCore for Mix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Mix(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5u64..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&c));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Mix(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((0.28..0.32).contains(&(hits as f64 / 100_000.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Mix(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn takes_dyn(rng: &mut (impl Rng + ?Sized)) -> u32 {
            rng.gen_range(0..10)
        }
        let mut rng = Mix(9);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
