//! Std-only shim of the `proptest` API surface used by this workspace.
//!
//! Supports the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! range / tuple / `Just` / `any` strategies, `collection::vec`,
//! `option::of`, `prop_map` / `prop_flat_map`, and the `prop_assert*`
//! macros. Generation is driven by a deterministic SplitMix64 stream seeded
//! from the test's source location and case index, so failures reproduce
//! across runs. There is no shrinking: a failing case reports its case
//! number and panics with the assertion message.

/// Deterministic random source used to drive strategies.
pub mod test_runner {
    /// SplitMix64-based generator; deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's source location and case index so each
        /// test function gets an independent, reproducible stream.
        pub fn for_case(file: &str, line: u32, case: u32) -> Self {
            // FNV-1a over the location, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= (line as u64) << 32 | case as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`; `lo < hi` required.
        pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi, "empty range {lo}..{hi}");
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform in `[lo, hi]`.
        pub fn u64_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
            if lo == hi {
                return lo;
            }
            lo + self.next_u64() % (hi - lo + 1)
        }

        /// Uniform float in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run configuration: only the case count matters to this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps offline CI quick while
            // still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a dependent strategy with `f`, and
        /// generates from that.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategies behind references delegate to the referent, letting the
    /// `proptest!` macro evaluate strategy expressions by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy, used via [`any`].
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    /// The whole-domain strategy for `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the full domain of `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.u64_range(self.start as u64, self.end as u64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.u64_range_inclusive(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification for [`vec`]: `n`, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range {r:?}");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.u64_range_inclusive(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Some` from the inner strategy ~3/4 of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `proptest::option::of(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The glob-import surface used by tests.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Like `assert!`; a failure fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like `assert_eq!`; a failure fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Like `assert_ne!`; a failure fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. A panicking case reports its case number before propagating.
#[macro_export]
macro_rules! proptest {
    (@run $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(file!(), "::", stringify!($name)),
                    line!(),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: case {case}/{} of {} failed (deterministic; \
                         re-run reproduces it)",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(file!(), line!(), 0);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::generate(&(5usize..=5), &mut rng);
            assert_eq!(y, 5);
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_and_option_compose() {
        let mut rng = crate::test_runner::TestRng::for_case(file!(), line!(), 1);
        let strat = crate::collection::vec((0u32..10, 0.0f64..1.0), 2..6);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in &v {
                assert!(*a < 10 && (0.0..1.0).contains(b));
            }
            match Strategy::generate(&crate::option::of(1usize..4), &mut rng) {
                Some(n) => {
                    assert!((1..4).contains(&n));
                    saw_some = true;
                }
                None => saw_none = true,
            }
        }
        assert!(saw_none && saw_some, "option::of should produce both arms");
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = crate::test_runner::TestRng::for_case(file!(), line!(), 2);
        let strat =
            (2usize..8).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..100, n..=n)));
        for _ in 0..100 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_once = || {
            let mut rng = crate::test_runner::TestRng::for_case("x.rs", 10, 3);
            (0..50)
                .map(|_| Strategy::generate(&(0u64..1_000_000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_once(), gen_once());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts work, config is honoured.
        #[test]
        fn macro_smoke(a in 0u32..50, b in any::<bool>(), v in crate::collection::vec(1u8..5, 1..4)) {
            prop_assert!(a < 50);
            prop_assert_eq!(u8::from(b), usize::from(b) as u8);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }
    }
}
