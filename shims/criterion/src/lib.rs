//! Std-only shim of the `criterion` API surface used by this workspace.
//!
//! Provides `Criterion`, `Bencher::{iter, iter_batched}`, `BatchSize` and
//! the `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! warm-up + measurement loop around `std::time::Instant` that prints
//! median time per iteration — no statistics engine, no HTML reports, but
//! `cargo bench` runs and produces comparable numbers offline.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// routine call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: setup cost comparable to the routine.
    SmallInput,
    /// Large input: setup dominates; keep batches small.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for CLI compatibility; the shim has no arguments to read.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times one closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up: run untimed until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            std::hint::black_box(routine(input));
            warm_iters += 1;
        }
        // Choose an iteration count per sample from the warm-up rate.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += start.elapsed();
            }
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{name:<48} median {} (min {}, max {})",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
    }
}

/// Formats nanoseconds with a human unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |mut v| {
                    v.push(4);
                    assert_eq!(v.len(), 4, "setup must produce a fresh input");
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }
}
