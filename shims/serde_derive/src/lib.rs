//! Std-only shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! The offline build environment cannot fetch `syn`/`quote`, so this macro
//! parses the item's token stream by hand and emits the impl as a source
//! string. It supports exactly the shapes this workspace derives:
//!
//! * structs with named fields (optional `#[serde(default)]` /
//!   `#[serde(default = "path")]`),
//! * tuple structs (single-field ones serialize transparently),
//! * enums whose variants are unit or struct-like.
//!
//! Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default_fn: Option<String>,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

/// Scans one `#[...]` attribute group for `serde(default = "path")` and
/// returns the path if present.
fn serde_default_of(group: &proc_macro::Group) -> Option<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
            let mut i = 0;
            while i < inner.len() {
                if let TokenTree::Ident(key) = &inner[i] {
                    if key.to_string() == "default" {
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(i + 1), inner.get(i + 2))
                        {
                            if eq.as_char() == '=' {
                                let s = lit.to_string();
                                return Some(s.trim_matches('"').to_string());
                            }
                        }
                        // Bare `#[serde(default)]`: the field's
                        // `Default` value stands in when missing.
                        return Some("::std::default::Default::default".to_string());
                    }
                }
                i += 1;
            }
            None
        }
        _ => None,
    }
}

/// Skips attributes at `*i`, returning any `serde(default)` path seen.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut default_fn = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if let Some(path) = serde_default_of(g) {
                default_fn = Some(path);
            }
            *i += 2;
        } else {
            break;
        }
    }
    default_fn
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses named fields out of a brace group's token list.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default_fn = skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field {name}, got {other:?}")),
        }
        // Consume the type: everything until a ',' outside angle brackets.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field { name, default_fn });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct's paren group.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for tok in tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    commas + 1 - usize::from(trailing_comma)
}

/// Parses enum variants out of a brace group's token list.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type {name}"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_tuple_fields(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_variants(&inner)?
                }
                other => return Err(format!("unsupported enum body: {other:?}")),
            };
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for item kind '{other}'")),
    }
}

/// Emits `("name", to_value(&EXPR.name))` object pairs for named fields.
fn ser_named_pairs(fields: &[Field], access: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({access}{n})),",
                n = f.name
            )
        })
        .collect()
}

/// Emits named-field constructor entries reading from `fields`.
fn de_named_entries(fields: &[Field], context: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let missing = match &f.default_fn {
                Some(path) => format!("{path}()"),
                None => format!(
                    "return ::std::result::Result::Err(::serde::Error::missing(\"{n}\", \"{context}\"))",
                    n = f.name
                ),
            };
            format!(
                "{n}: match ::serde::value::field(fields, \"{n}\") {{ \
                   ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                   ::std::option::Option::None => {missing}, \
                 }},",
                n = f.name
            )
        })
        .collect()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let body = match &item {
        Item::Struct {
            fields: Fields::Named(fields),
            ..
        } => format!(
            "::serde::Value::Object(::std::vec![{}])",
            ser_named_pairs(fields, "&self.")
        ),
        Item::Struct {
            fields: Fields::Tuple(1),
            ..
        } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::Struct {
            fields: Fields::Tuple(n),
            ..
        } => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Item::Struct {
            fields: Fields::Unit,
            name,
        } => format!("::serde::Value::Str(::std::string::String::from(\"{name}\"))"),
        Item::Enum { variants, .. } => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    Fields::Unit => format!(
                        "Self::{n} => ::serde::Value::Str(::std::string::String::from(\"{n}\")),",
                        n = v.name
                    ),
                    Fields::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        format!(
                            "Self::{n} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                               ::std::string::String::from(\"{n}\"), \
                               ::serde::Value::Object(::std::vec![{pairs}]))]),",
                            n = v.name,
                            binds = binds.join(", "),
                            pairs = ser_named_pairs(fields, "")
                        )
                    }
                    Fields::Tuple(_) => format!(
                        "Self::{n}(..) => ::std::unimplemented!(\
                           \"serde shim: tuple enum variants are not supported\"),",
                        n = v.name
                    ),
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    let body = match &item {
        Item::Struct {
            fields: Fields::Named(fields),
            ..
        } => format!(
            "let fields = v.as_object().ok_or_else(|| \
               ::serde::Error::expected(\"object\", \"{name}\"))?; \
             ::std::result::Result::Ok(Self {{ {entries} }})",
            entries = de_named_entries(fields, &name)
        ),
        Item::Struct {
            fields: Fields::Tuple(1),
            ..
        } => "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        Item::Struct {
            fields: Fields::Tuple(n),
            ..
        } => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Array(items) if items.len() == {n} => \
                     ::std::result::Result::Ok(Self({entries})), \
                   _ => ::std::result::Result::Err(\
                     ::serde::Error::expected(\"{n}-element array\", \"{name}\")), \
                 }}"
            )
        }
        Item::Struct {
            fields: Fields::Unit,
            ..
        } => "::std::result::Result::Ok(Self)".to_string(),
        Item::Enum { variants, .. } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{n}\" => return ::std::result::Result::Ok(Self::{n}),",
                        n = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match &v.fields {
                    Fields::Named(fields) => Some(format!(
                        "\"{n}\" => {{ \
                           let fields = inner.as_object().ok_or_else(|| \
                             ::serde::Error::expected(\"object\", \"{name}::{n}\"))?; \
                           return ::std::result::Result::Ok(Self::{n} {{ {entries} }}); \
                         }}",
                        n = v.name,
                        entries = de_named_entries(fields, &format!("{name}::{}", v.name))
                    )),
                    _ => None,
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(s) = v {{ \
                   match s.as_str() {{ {unit_arms} _ => {{}} }} \
                 }} \
                 if let ::serde::Value::Object(tagged) = v {{ \
                   if tagged.len() == 1 {{ \
                     let (tag, inner) = &tagged[0]; \
                     let _ = inner; \
                     match tag.as_str() {{ {tagged_arms} _ => {{}} }} \
                   }} \
                 }} \
                 ::std::result::Result::Err(\
                   ::serde::Error::expected(\"variant of {name}\", \"{name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Deserialize impl")
}
